package scenario

// The scorer: joins a campaign's ground truth against the collector's
// per-window DecisionRecords (GET /debug/decisions/{deployment}) and turns
// the match into classification metrics. This is what makes the corpus a
// regression suite — BENCH_scenarios.json is a CorpusReport.

import (
	"time"

	"sensorguard/internal/classify"
	"sensorguard/internal/core"
)

// kindClass maps every classify.Kind name onto a Label, built from the kinds
// themselves so a new diagnosis kind cannot silently fall through.
var kindClass = func() map[string]Label {
	m := make(map[string]Label)
	for k := classify.KindNone; k <= classify.KindMixed; k++ {
		switch {
		case k.IsAttack():
			m[k.String()] = LabelAttack
		case k.IsError():
			m[k.String()] = LabelError
		default:
			m[k.String()] = LabelBenign
		}
	}
	return m
}()

// PredictLabel reduces one decision record to the three-way verdict the
// ground truth is expressed in. Precedence mirrors the paper's diagnosis:
// the structural network verdict (§3.4, read off B^CO) decides attack vs
// error when present; otherwise any filtered alarm or open per-sensor track
// means something is wrong with a sensor — an error. A window skipped for
// lacking a quorum is unscorable (ok == false).
//
// One refinement over taking the verdict at face value: a structural attack
// verdict whose sensor-level evidence implicates exactly one sensor is
// re-read as an error. The paper's error model is per-sensor — a lone
// suspect with an alarm or open track plus a structural violation is
// exactly the shape a single faulty sensor leaves in B^CO, and the
// majority assumption prefers that explanation. Coordinated attacks
// implicate several sensors, and phantom injections (forged traffic from
// identities outside the sensor set) implicate none, so both keep the
// attack verdict.
func PredictLabel(rec core.DecisionRecord) (label Label, ok bool) {
	if rec.Skipped {
		return "", false
	}
	if rec.Evidence != nil {
		if cls, known := kindClass[rec.Evidence.Verdict]; known && cls != LabelBenign {
			if cls == LabelAttack && loneSensorShape(rec) {
				return LabelError, true
			}
			return cls, true
		}
	}
	if rec.FilteredAlarms > 0 {
		return LabelError, true
	}
	for _, s := range rec.Sensors {
		if s.TrackOpen {
			return LabelError, true
		}
	}
	return LabelBenign, true
}

// loneSensorShape reports whether a record's evidence looks like a single
// faulty sensor rather than a coordinated attack: exactly one sensor is
// implicated by a filtered alarm or an open track. Zero implicated sensors
// is NOT this shape — a fault always implicates its own sensor, so
// structural violations with no suspect point at injected traffic.
func loneSensorShape(rec core.DecisionRecord) bool {
	implicated := rec.FilteredAlarms
	open := 0
	for _, s := range rec.Sensors {
		if s.TrackOpen {
			open++
		}
	}
	if open > implicated {
		implicated = open
	}
	return implicated == 1
}

// Score is one scenario's verdict-vs-truth outcome.
type Score struct {
	Scenario   string `json:"scenario"`
	Class      Label  `json:"class"`
	Deployment string `json:"deployment"`
	Seed       int64  `json:"seed"`
	Days       int    `json:"days"`

	// Windows is the ground-truth window count; Scored is how many of them
	// had a joinable, non-skipped decision record. The tail windows held
	// open by the watermark at drain time simply go unscored.
	Windows int `json:"windows"`
	Scored  int `json:"scored"`
	// Correct counts exact label matches over the scored windows; Accuracy
	// is Correct/Scored (1 when nothing was scorable).
	Correct  int     `json:"correct"`
	Accuracy float64 `json:"accuracy"`
	// BenignWindows and FalseAlarms measure the false-alarm rate: scored
	// truth-benign windows and how many of them drew a non-benign verdict.
	BenignWindows  int     `json:"benign_windows"`
	FalseAlarms    int     `json:"false_alarms"`
	FalseAlarmRate float64 `json:"false_alarm_rate"`
	// OnsetWindow is the first non-benign truth window (-1 for benign
	// scenarios). Detected reports whether any scored window at or past the
	// onset drew a non-benign verdict; DetectionLatencyWindows is how many
	// windows after onset that first happened (-1 when undetected or not
	// applicable), DetectionLatencySec the same in event time.
	OnsetWindow             int     `json:"onset_window"`
	Detected                bool    `json:"detected"`
	DetectionLatencyWindows int     `json:"detection_latency_windows"`
	DetectionLatencySec     float64 `json:"detection_latency_sec"`
	// FinalVerdict is the structural verdict of the last scored window —
	// the diagnosis the campaign settles on, pinned against Spec.Expected.
	FinalVerdict string `json:"final_verdict"`
	// Confusion counts truth→predicted over scored windows.
	Confusion map[Label]map[Label]int `json:"confusion"`
}

// ScoreRun joins ground truth against decision records by window ordinal.
// Records for windows outside the truth (or duplicates — last record wins)
// are tolerated: the join is truth-driven.
func ScoreRun(run *Run, recs []core.DecisionRecord) Score {
	byWindow := make(map[int]core.DecisionRecord, len(recs))
	for _, r := range recs {
		byWindow[r.Window] = r
	}
	s := Score{
		Scenario:                run.Spec.Name,
		Class:                   run.Spec.Class,
		Deployment:              run.Config.Deployment,
		Seed:                    run.Config.Seed,
		Days:                    run.Config.Days,
		Windows:                 len(run.Truth),
		OnsetWindow:             run.OnsetWindow(),
		DetectionLatencyWindows: -1,
		Confusion: map[Label]map[Label]int{
			LabelBenign: {}, LabelError: {}, LabelAttack: {},
		},
	}
	lastScored := -1
	for _, wt := range run.Truth {
		rec, have := byWindow[wt.Window]
		if !have {
			continue
		}
		pred, ok := PredictLabel(rec)
		if !ok {
			continue
		}
		s.Scored++
		s.Confusion[wt.Label][pred]++
		if pred == wt.Label {
			s.Correct++
		}
		if wt.Label == LabelBenign {
			s.BenignWindows++
			if pred != LabelBenign {
				s.FalseAlarms++
			}
		}
		if s.OnsetWindow >= 0 && wt.Window >= s.OnsetWindow && pred != LabelBenign && !s.Detected {
			s.Detected = true
			s.DetectionLatencyWindows = wt.Window - s.OnsetWindow
			s.DetectionLatencySec = float64(s.DetectionLatencyWindows) * run.Window.Seconds()
		}
		if wt.Window > lastScored {
			lastScored = wt.Window
			if rec.Evidence != nil {
				s.FinalVerdict = rec.Evidence.Verdict
			}
		}
	}
	s.Accuracy = 1
	if s.Scored > 0 {
		s.Accuracy = float64(s.Correct) / float64(s.Scored)
	}
	if s.BenignWindows > 0 {
		s.FalseAlarmRate = float64(s.FalseAlarms) / float64(s.BenignWindows)
	}
	return s
}

// CorpusSummary aggregates the per-scenario scores.
type CorpusSummary struct {
	Scenarios int `json:"scenarios"`
	// MeanAccuracy and MeanFalseAlarmRate are unweighted means over
	// scenarios — each campaign counts once regardless of length.
	MeanAccuracy       float64 `json:"mean_accuracy"`
	MeanFalseAlarmRate float64 `json:"mean_false_alarm_rate"`
	// Anomalous counts scenarios with an onset; Detected how many of those
	// the detector flagged at all; MeanDetectionLatencySec averages the
	// event-time latency over the detected ones.
	Anomalous               int     `json:"anomalous"`
	Detected                int     `json:"detected"`
	MeanDetectionLatencySec float64 `json:"mean_detection_latency_sec"`
}

// CorpusReport is the committed BENCH_scenarios.json document.
type CorpusReport struct {
	SchemaVersion int     `json:"schema_version"`
	GeneratedAt   string  `json:"generated_at,omitempty"`
	GoOS          string  `json:"goos"`
	GoArch        string  `json:"goarch"`
	CPUs          int     `json:"cpus"`
	Seed          int64   `json:"seed"`
	WindowSec     float64 `json:"window_sec"`

	Scenarios []Score       `json:"scenarios"`
	Summary   CorpusSummary `json:"summary"`
}

// SchemaVersion is the current BENCH_scenarios.json schema.
const SchemaVersion = 1

// Summarize fills a report's summary from its per-scenario scores.
func Summarize(scores []Score) CorpusSummary {
	sum := CorpusSummary{Scenarios: len(scores)}
	if len(scores) == 0 {
		return sum
	}
	var acc, far, lat float64
	for _, s := range scores {
		acc += s.Accuracy
		far += s.FalseAlarmRate
		if s.OnsetWindow >= 0 {
			sum.Anomalous++
			if s.Detected {
				sum.Detected++
				lat += s.DetectionLatencySec
			}
		}
	}
	sum.MeanAccuracy = acc / float64(len(scores))
	sum.MeanFalseAlarmRate = far / float64(len(scores))
	if sum.Detected > 0 {
		sum.MeanDetectionLatencySec = lat / float64(sum.Detected)
	}
	return sum
}

// Latency converts a window-count latency into event time for a run.
func Latency(run *Run, windows int) time.Duration {
	return time.Duration(windows) * run.Window
}
