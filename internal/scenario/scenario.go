// Package scenario is the adversary-simulation corpus: a set of labeled
// campaigns — wire-level reading streams with per-window ground-truth labels
// — that exercise the detector well beyond the paper's canonical fault and
// attack traces. Each campaign pairs a synthetic GDI deployment with an
// injected behaviour (accidental faults, coordinated collusion, wire-level
// replay/spoofing/flooding, benign churn, composites) and knows, window by
// window, what a perfect detector should say. cmd/sgsim streams campaigns to
// a live collector and the scorer in this package joins the ground truth
// against the collector's /debug/decisions records, turning the corpus into
// a per-scenario regression suite (the committed BENCH_scenarios.json).
//
// Labels are cumulative: once a fault or attack has begun, every later
// window carries its label (attack dominating error), because the paper's
// diagnosis — like the detector's — accumulates model structure rather than
// re-deciding from scratch each window. Injections in the corpus are
// therefore open-ended unless a scenario documents otherwise.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"sensorguard/internal/ingest"
)

// Label is a ground-truth (and predicted) window class.
type Label string

const (
	// LabelBenign marks a window where nothing is wrong.
	LabelBenign Label = "benign"
	// LabelError marks a window affected by an accidental fault.
	LabelError Label = "error"
	// LabelAttack marks a window affected by a malicious attack.
	LabelAttack Label = "attack"
)

// Config parameterises one campaign run. The zero value of every optional
// field means "use the scenario's default"; DecodeConfig applies validation
// and defaults. This is the JSON body of sgsim's POST /campaigns.
type Config struct {
	// Scenario names the corpus entry to run.
	Scenario string `json:"scenario"`
	// Seed freezes every random choice (trace, faults, adversary jitter),
	// making a campaign byte-reproducible. Default 1.
	Seed int64 `json:"seed,omitempty"`
	// Days is the campaign length; 0 uses the scenario default. Must be at
	// least the scenario's MinDays so every onset fits.
	Days int `json:"days,omitempty"`
	// Sensors is the mote count (default 10, the paper's setup).
	Sensors int `json:"sensors,omitempty"`
	// Deployment is the key the campaign streams under; empty derives
	// "<scenario>-<seed>".
	Deployment string `json:"deployment,omitempty"`
	// Rate is the replay pacing multiplier over real time handed to the
	// shipper driver (0 = as fast as possible). It does not alter the
	// generated stream or labels.
	Rate float64 `json:"rate,omitempty"`
}

// maxDays caps campaign length: two months of 5-minute samples is already
// ~175k readings for the default fleet — enough for any regression corpus.
const maxDays = 62

// DecodeConfig parses and validates a campaign configuration, resolving the
// scenario and applying its defaults. Unknown fields are rejected so a typo
// in a knob name fails loudly instead of silently running the default.
func DecodeConfig(data []byte) (Config, Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, nil, fmt.Errorf("scenario: bad config: %w", err)
	}
	if dec.More() {
		return Config{}, nil, errors.New("scenario: trailing data after config object")
	}
	sc, err := c.normalize()
	if err != nil {
		return Config{}, nil, err
	}
	return c, sc, nil
}

// normalize validates c in place, resolving the scenario and filling
// defaults. It is the single validation path for DecodeConfig and for
// configs assembled directly in Go.
func (c *Config) normalize() (Scenario, error) {
	sc, ok := Lookup(c.Scenario)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (have %v)", c.Scenario, Names())
	}
	spec := sc.Spec()
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Days == 0 {
		c.Days = spec.DefaultDays
	}
	if c.Days < spec.MinDays || c.Days > maxDays {
		return nil, fmt.Errorf("scenario: %s needs days in [%d,%d], got %d",
			spec.Name, spec.MinDays, maxDays, c.Days)
	}
	if c.Sensors == 0 {
		c.Sensors = 10
	}
	// The corpus needs an honest quorum to be meaningful: at least 4
	// sensors so a 3-sensor adversary cannot be the whole network, and a
	// bounded count so a campaign cannot accidentally DoS the collector.
	if c.Sensors < 4 || c.Sensors > 100 {
		return nil, fmt.Errorf("scenario: sensors must be in [4,100], got %d", c.Sensors)
	}
	if c.Deployment == "" {
		c.Deployment = fmt.Sprintf("%s-%d", spec.Name, c.Seed)
	}
	// Deployment keys end up in URL paths (/debug/decisions/{deployment})
	// and sidecar filenames, so keep them to a safe charset.
	if len(c.Deployment) > 128 || !safeDeployment(c.Deployment) {
		return nil, fmt.Errorf("scenario: deployment %q must be 1-128 chars of [A-Za-z0-9._-]", c.Deployment)
	}
	if c.Rate < 0 {
		return nil, fmt.Errorf("scenario: rate must be non-negative, got %v", c.Rate)
	}
	return sc, nil
}

// safeDeployment reports whether the key uses only [A-Za-z0-9._-].
func safeDeployment(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Knob documents one parameter a scenario exposes, for docs/SCENARIOS.md
// and sgsim's GET /scenarios.
type Knob struct {
	Name   string `json:"name"`
	Value  string `json:"value"`
	Effect string `json:"effect"`
}

// Spec is a scenario's identity card: its truth class, what the detector is
// expected to conclude, and the knobs the campaign exposes.
type Spec struct {
	// Name is the corpus key.
	Name string `json:"name"`
	// Class is the headline ground-truth class of the campaign's anomaly
	// phase (benign scenarios stay LabelBenign throughout).
	Class Label `json:"class"`
	// Summary is one line for docs and the control API.
	Summary string `json:"summary"`
	// Expected is the detector verdict the committed corpus scores pin —
	// "none" for benign controls, a classify.Kind name otherwise. For
	// beyond-paper probes this records measured behaviour, not a promise
	// (see docs/SCENARIOS.md).
	Expected string `json:"expected_verdict"`
	// MinDays and DefaultDays bound and default the campaign length; every
	// onset in the scenario fits inside MinDays.
	MinDays     int `json:"min_days"`
	DefaultDays int `json:"default_days"`
	// Knobs documents the fixed parameters of the campaign.
	Knobs []Knob `json:"knobs,omitempty"`
}

// WindowTruth is the ground-truth label of one observation window.
type WindowTruth struct {
	// Window is the absolute window ordinal (event time / window width),
	// matching core.DecisionRecord.Window.
	Window int `json:"window"`
	// Label is the cumulative ground truth for this window.
	Label Label `json:"label"`
	// Phase names the campaign phase for humans ("clean", "drift",
	// "collusion", ...). Scoring ignores it.
	Phase string `json:"phase,omitempty"`
}

// Run is one built campaign: the wire-level stream to ship and the ground
// truth to score against.
type Run struct {
	// Spec and Config identify what was built.
	Spec   Spec   `json:"spec"`
	Config Config `json:"config"`
	// Window is the observation window width the truth is expressed in
	// (the collector must window at the same width — 1h, the default).
	Window time.Duration `json:"-"`
	// WindowSec mirrors Window for the JSON sidecar.
	WindowSec float64 `json:"window_sec"`
	// Readings is the stream in ship order. Most readings carry the
	// producer wire sequence; forged wire-level injections carry Seq 0
	// (an attacker does not participate in the producer's retransmission
	// discipline) and replayed duplicates reuse stale sequence numbers.
	Readings []ingest.Reading `json:"-"`
	// Truth holds one label per window, ascending, starting at window 0.
	Truth []WindowTruth `json:"truth"`
}

// OnsetWindow returns the first window whose truth label is not benign, or
// -1 for an all-benign run.
func (r *Run) OnsetWindow() int {
	for _, wt := range r.Truth {
		if wt.Label != LabelBenign {
			return wt.Window
		}
	}
	return -1
}

// Scenario is one corpus entry: a named, parameterised campaign builder.
type Scenario interface {
	// Spec returns the scenario's identity card.
	Spec() Spec
	// Build generates the campaign for a validated config. Building is
	// deterministic: equal configs yield byte-identical runs.
	Build(cfg Config) (*Run, error)
}

// builder implements Scenario around a build function.
type builder struct {
	spec  Spec
	build func(cfg Config, spec Spec) (*Run, error)
}

func (b *builder) Spec() Spec { return b.spec }

func (b *builder) Build(cfg Config) (*Run, error) {
	if _, err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Scenario != b.spec.Name {
		return nil, fmt.Errorf("scenario: config for %q handed to %q", cfg.Scenario, b.spec.Name)
	}
	run, err := b.build(cfg, b.spec)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", b.spec.Name, err)
	}
	run.Spec = b.spec
	run.Config = cfg
	run.WindowSec = run.Window.Seconds()
	return run, nil
}

// corpus is the ordered scenario registry, populated by corpus.go.
var corpus []Scenario

// register adds a scenario at package init; duplicate names are a bug.
func register(s Scenario) {
	for _, have := range corpus {
		if have.Spec().Name == s.Spec().Name {
			panic("scenario: duplicate registration of " + s.Spec().Name)
		}
	}
	corpus = append(corpus, s)
	sort.Slice(corpus, func(i, j int) bool { return corpus[i].Spec().Name < corpus[j].Spec().Name })
}

// Corpus returns every registered scenario, ordered by name.
func Corpus() []Scenario {
	return append([]Scenario(nil), corpus...)
}

// Lookup resolves a scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, s := range corpus {
		if s.Spec().Name == name {
			return s, true
		}
	}
	return nil, false
}

// Names returns the corpus scenario names, ordered.
func Names() []string {
	out := make([]string, len(corpus))
	for i, s := range corpus {
		out[i] = s.Spec().Name
	}
	return out
}

// truthHeader is the first line of a ground-truth sidecar file.
type truthHeader struct {
	Scenario  string  `json:"scenario"`
	Config    Config  `json:"config"`
	WindowSec float64 `json:"window_sec"`
	Windows   int     `json:"windows"`
}

// WriteTruth streams a run's ground truth as NDJSON: one header line, then
// one WindowTruth per line — the label sidecar sgsim writes next to every
// campaign it ships.
func WriteTruth(w io.Writer, run *Run) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(truthHeader{
		Scenario:  run.Spec.Name,
		Config:    run.Config,
		WindowSec: run.Window.Seconds(),
		Windows:   len(run.Truth),
	}); err != nil {
		return err
	}
	for _, wt := range run.Truth {
		if err := enc.Encode(wt); err != nil {
			return err
		}
	}
	return nil
}

// ReadTruth decodes a sidecar written by WriteTruth into a skeletal Run
// (spec resolved from the header, readings absent) sufficient for scoring.
func ReadTruth(r io.Reader) (*Run, error) {
	dec := json.NewDecoder(r)
	var hdr truthHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("scenario: truth sidecar header: %w", err)
	}
	if hdr.WindowSec <= 0 {
		return nil, fmt.Errorf("scenario: truth sidecar has window_sec %v", hdr.WindowSec)
	}
	sc, ok := Lookup(hdr.Scenario)
	if !ok {
		return nil, fmt.Errorf("scenario: truth sidecar names unknown scenario %q", hdr.Scenario)
	}
	run := &Run{
		Spec:      sc.Spec(),
		Config:    hdr.Config,
		Window:    time.Duration(hdr.WindowSec * float64(time.Second)),
		WindowSec: hdr.WindowSec,
	}
	for {
		var wt WindowTruth
		if err := dec.Decode(&wt); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("scenario: truth sidecar line %d: %w", len(run.Truth)+2, err)
		}
		run.Truth = append(run.Truth, wt)
	}
	if len(run.Truth) != hdr.Windows {
		return nil, fmt.Errorf("scenario: truth sidecar holds %d windows, header says %d",
			len(run.Truth), hdr.Windows)
	}
	return run, nil
}
