package scenario

import (
	"bytes"
	"crypto/sha256"

	"testing"
	"time"

	"sensorguard/internal/core"
	"sensorguard/internal/ingest"
	"sensorguard/internal/vecmat"
)

// minConfig is the cheapest valid config for a scenario: its MinDays.
func minConfig(s Scenario) Config {
	return Config{Scenario: s.Spec().Name, Days: s.Spec().MinDays}
}

func TestCorpusShape(t *testing.T) {
	scenarios := Corpus()
	if len(scenarios) < 8 {
		t.Fatalf("corpus holds %d scenarios, the issue commits to ≥8", len(scenarios))
	}
	var classes = map[Label]int{}
	for _, s := range scenarios {
		spec := s.Spec()
		if spec.Name == "" || spec.Summary == "" || spec.Expected == "" {
			t.Errorf("%q: incomplete spec %+v", spec.Name, spec)
		}
		if spec.MinDays < 3 || spec.DefaultDays < spec.MinDays {
			t.Errorf("%s: bad day bounds min=%d default=%d", spec.Name, spec.MinDays, spec.DefaultDays)
		}
		classes[spec.Class]++
	}
	if classes[LabelBenign] < 2 || classes[LabelError] < 2 || classes[LabelAttack] < 4 {
		t.Errorf("class mix benign=%d error=%d attack=%d, want ≥2/≥2/≥4",
			classes[LabelBenign], classes[LabelError], classes[LabelAttack])
	}
}

func TestCorpusBuildsAreLabeledAndDeterministic(t *testing.T) {
	for _, s := range Corpus() {
		s := s
		t.Run(s.Spec().Name, func(t *testing.T) {
			t.Parallel()
			run, err := s.Build(minConfig(s))
			if err != nil {
				t.Fatal(err)
			}
			if len(run.Readings) == 0 {
				t.Fatal("no readings")
			}
			wantWindows := run.Spec.MinDays * 24
			if len(run.Truth) != wantWindows {
				t.Errorf("truth covers %d windows, want %d", len(run.Truth), wantWindows)
			}
			// Truth is contiguous from window 0 and its severity only climbs:
			// the corpus injections are cumulative.
			rank := 0
			for i, wt := range run.Truth {
				if wt.Window != i {
					t.Fatalf("truth[%d] labels window %d", i, wt.Window)
				}
				if r := labelRank(wt.Label); r < rank {
					t.Errorf("window %d: label %s downgrades severity", i, wt.Label)
				} else {
					rank = r
				}
			}
			if run.Spec.Class == LabelBenign {
				if on := run.OnsetWindow(); on != -1 {
					t.Errorf("benign scenario has onset window %d", on)
				}
			} else {
				if on := run.OnsetWindow(); on != 48 {
					t.Errorf("onset window %d, corpus convention is 48 (48h, 1h windows)", on)
				}
				if run.Truth[len(run.Truth)-1].Label != run.Spec.Class {
					t.Errorf("final truth %s, spec class %s",
						run.Truth[len(run.Truth)-1].Label, run.Spec.Class)
				}
			}
			// Ship order must be usable as arrival order: the shipping key
			// is embedded implicitly, so check event-time ordering among
			// fresh (non-duplicate) frames per sensor.
			if h1, h2 := buildHash(t, s), buildHash(t, s); h1 != h2 {
				t.Errorf("two builds of the same config differ: %x vs %x", h1, h2)
			}
		})
	}
}

func buildHash(t *testing.T, s Scenario) [32]byte {
	t.Helper()
	run, err := s.Build(minConfig(s))
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, r := range run.Readings {
		line, err := ingest.EncodeLine(r)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(line)
		h.Write([]byte{'\n'})
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func TestReplayScenarioCarriesStaleDuplicates(t *testing.T) {
	s, ok := Lookup("attack-replay-stale")
	if !ok {
		t.Fatal("attack-replay-stale missing from corpus")
	}
	run, err := s.Build(minConfig(s))
	if err != nil {
		t.Fatal(err)
	}
	// The re-posted wire segment means some sequence numbers appear twice,
	// the second time after higher seqs have already shipped — exactly what
	// the collector's dedup high-water mark drops.
	seen := make(map[uint64]bool)
	var dups, regressions int
	var high uint64
	for _, r := range run.Readings {
		if r.Seq == 0 {
			continue
		}
		if seen[r.Seq] {
			dups++
			if r.Seq < high {
				regressions++
			}
		}
		seen[r.Seq] = true
		if r.Seq > high {
			high = r.Seq
		}
	}
	if dups == 0 || regressions == 0 {
		t.Errorf("dups=%d regressions=%d, want both > 0 (stale-seq replay)", dups, regressions)
	}
}

func TestSpoofScenarioForgesUnsequencedPhantoms(t *testing.T) {
	s, ok := Lookup("attack-spoof-inject")
	if !ok {
		t.Fatal("attack-spoof-inject missing from corpus")
	}
	run, err := s.Build(minConfig(s))
	if err != nil {
		t.Fatal(err)
	}
	forged := 0
	for _, r := range run.Readings {
		if r.Sensor >= 100 {
			if r.Seq != 0 {
				t.Fatalf("forged frame from phantom %d carries producer seq %d", r.Sensor, r.Seq)
			}
			if r.Time < corpusOnset {
				t.Fatalf("phantom frame at %v, before onset", r.Time)
			}
			forged++
		}
	}
	if forged == 0 {
		t.Error("no phantom frames in the spoof campaign")
	}
}

func TestDecodeConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		body string
		ok   bool
	}{
		{"defaults", `{"scenario":"benign-control"}`, true},
		{"explicit", `{"scenario":"error-stuck","seed":7,"days":5,"sensors":12}`, true},
		{"unknown scenario", `{"scenario":"no-such"}`, false},
		{"unknown field", `{"scenario":"benign-control","dayz":9}`, false},
		{"days below min", `{"scenario":"composite-drift-attack","days":4}`, false},
		{"days above cap", `{"scenario":"benign-control","days":90}`, false},
		{"too few sensors", `{"scenario":"benign-control","sensors":2}`, false},
		{"negative rate", `{"scenario":"benign-control","rate":-1}`, false},
		{"trailing garbage", `{"scenario":"benign-control"} {"x":1}`, false},
		{"not an object", `[1,2]`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, sc, err := DecodeConfig([]byte(tc.body))
			if tc.ok && err != nil {
				t.Fatalf("rejected: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("accepted")
				}
				return
			}
			if sc == nil || cfg.Seed == 0 || cfg.Days == 0 || cfg.Sensors == 0 || cfg.Deployment == "" {
				t.Errorf("defaults not applied: %+v", cfg)
			}
		})
	}
}

func TestTruthSidecarRoundTrip(t *testing.T) {
	s, _ := Lookup("error-stuck")
	run, err := s.Build(Config{Scenario: "error-stuck", Days: s.Spec().MinDays, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTruth(&buf, run); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTruth(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Name != run.Spec.Name || got.Config != run.Config || got.Window != run.Window {
		t.Errorf("header round-trip: got %+v %v, want %+v %v", got.Config, got.Window, run.Config, run.Window)
	}
	if len(got.Truth) != len(run.Truth) {
		t.Fatalf("%d truth rows, want %d", len(got.Truth), len(run.Truth))
	}
	for i := range got.Truth {
		if got.Truth[i] != run.Truth[i] {
			t.Fatalf("row %d: %+v != %+v", i, got.Truth[i], run.Truth[i])
		}
	}
	// Truncated sidecars must not pass for complete ones.
	var short bytes.Buffer
	if err := WriteTruth(&short, run); err != nil {
		t.Fatal(err)
	}
	trimmed := bytes.TrimSuffix(short.Bytes(), []byte("\n"))
	trimmed = trimmed[:bytes.LastIndexByte(trimmed, '\n')+1]
	if _, err := ReadTruth(bytes.NewReader(trimmed)); err == nil {
		t.Error("truncated sidecar accepted")
	}
}

func TestPredictLabel(t *testing.T) {
	attackRec := core.DecisionRecord{Evidence: &core.DecisionEvidence{Verdict: "dynamic-creation"}}
	if l, ok := PredictLabel(attackRec); !ok || l != LabelAttack {
		t.Errorf("attack verdict → %v/%v", l, ok)
	}
	errRec := core.DecisionRecord{FilteredAlarms: 2, Evidence: &core.DecisionEvidence{Verdict: "none"}}
	if l, ok := PredictLabel(errRec); !ok || l != LabelError {
		t.Errorf("filtered alarms → %v/%v", l, ok)
	}
	trackRec := core.DecisionRecord{
		Sensors:  []core.SensorDecision{{Sensor: 1}, {Sensor: 2, TrackOpen: true}},
		Evidence: &core.DecisionEvidence{Verdict: "none"},
	}
	if l, ok := PredictLabel(trackRec); !ok || l != LabelError {
		t.Errorf("open track → %v/%v", l, ok)
	}
	if l, ok := PredictLabel(core.DecisionRecord{Evidence: &core.DecisionEvidence{Verdict: "none"}}); !ok || l != LabelBenign {
		t.Errorf("quiet record → %v/%v", l, ok)
	}
	if _, ok := PredictLabel(core.DecisionRecord{Skipped: true}); ok {
		t.Error("skipped window scored")
	}
	// The structural verdict outranks residual alarms when the evidence
	// spans several sensors: an attack diagnosis with coordinated alarms
	// still reads as attack.
	both := core.DecisionRecord{FilteredAlarms: 3, Evidence: &core.DecisionEvidence{Verdict: "dynamic-change"}}
	if l, _ := PredictLabel(both); l != LabelAttack {
		t.Errorf("attack verdict + coordinated alarms → %v, want attack", l)
	}
	// Exactly one implicated sensor is a fault's signature, not an
	// attack's — the structural verdict is demoted to error.
	lone := core.DecisionRecord{
		FilteredAlarms: 1,
		Sensors:        []core.SensorDecision{{Sensor: 6, TrackOpen: true}},
		Evidence:       &core.DecisionEvidence{Verdict: "mixed", RowViolations: []vecmat.OrthoViolation{{I: 6, J: 6}}, ColViolations: []vecmat.OrthoViolation{{I: 0, J: 1}}},
	}
	if l, _ := PredictLabel(lone); l != LabelError {
		t.Errorf("lone-sensor mixed verdict → %v, want error", l)
	}
	// Two implicated sensors keep the attack verdict.
	pair := lone
	pair.FilteredAlarms = 2
	if l, _ := PredictLabel(pair); l != LabelAttack {
		t.Errorf("two-sensor mixed verdict → %v, want attack", l)
	}
	// A structural verdict with nobody implicated stays an attack — phantom
	// injections (forged traffic from outside the sensor set) look exactly
	// like this, and a genuine fault would implicate its own sensor.
	phantom := core.DecisionRecord{Evidence: &core.DecisionEvidence{Verdict: "dynamic-creation", ColViolations: []vecmat.OrthoViolation{{I: 1, J: 2}}}}
	if l, _ := PredictLabel(phantom); l != LabelAttack {
		t.Errorf("phantom creation verdict → %v, want attack", l)
	}
}

func TestScoreRunJoinsTruthAgainstRecords(t *testing.T) {
	run := &Run{
		Spec:   Spec{Name: "synthetic", Class: LabelAttack},
		Config: Config{Deployment: "dep", Seed: 1, Days: 1},
		Window: time.Hour,
		Truth: []WindowTruth{
			{Window: 0, Label: LabelBenign},
			{Window: 1, Label: LabelBenign},
			{Window: 2, Label: LabelAttack},
			{Window: 3, Label: LabelAttack},
			{Window: 4, Label: LabelAttack},
		},
	}
	recs := []core.DecisionRecord{
		{Window: 0, Evidence: &core.DecisionEvidence{Verdict: "none"}},
		{Window: 1, FilteredAlarms: 1, Evidence: &core.DecisionEvidence{Verdict: "none"}}, // false alarm
		{Window: 2, Evidence: &core.DecisionEvidence{Verdict: "none"}},                    // missed
		{Window: 3, Evidence: &core.DecisionEvidence{Verdict: "dynamic-creation"}},        // caught, latency 1
		// window 4 never emitted (held by the watermark) — unscored
	}
	s := ScoreRun(run, recs)
	if s.Windows != 5 || s.Scored != 4 {
		t.Errorf("windows=%d scored=%d, want 5/4", s.Windows, s.Scored)
	}
	if s.Correct != 2 || s.Accuracy != 0.5 {
		t.Errorf("correct=%d accuracy=%v, want 2/0.5", s.Correct, s.Accuracy)
	}
	if s.BenignWindows != 2 || s.FalseAlarms != 1 || s.FalseAlarmRate != 0.5 {
		t.Errorf("benign=%d fa=%d far=%v, want 2/1/0.5", s.BenignWindows, s.FalseAlarms, s.FalseAlarmRate)
	}
	if !s.Detected || s.DetectionLatencyWindows != 1 || s.DetectionLatencySec != 3600 {
		t.Errorf("detected=%v latency=%d/%vs, want true/1/3600", s.Detected, s.DetectionLatencyWindows, s.DetectionLatencySec)
	}
	if s.FinalVerdict != "dynamic-creation" {
		t.Errorf("final verdict %q", s.FinalVerdict)
	}
	if s.Confusion[LabelAttack][LabelBenign] != 1 || s.Confusion[LabelAttack][LabelAttack] != 1 {
		t.Errorf("confusion %+v", s.Confusion)
	}

	sum := Summarize([]Score{s, {Accuracy: 1, OnsetWindow: -1}})
	if sum.Scenarios != 2 || sum.Anomalous != 1 || sum.Detected != 1 {
		t.Errorf("summary %+v", sum)
	}
	if sum.MeanAccuracy != 0.75 || sum.MeanDetectionLatencySec != 3600 {
		t.Errorf("summary means %+v", sum)
	}
}

func FuzzDecodeConfig(f *testing.F) {
	f.Add(`{"scenario":"benign-control"}`)
	f.Add(`{"scenario":"error-stuck","seed":7,"days":5,"sensors":12,"deployment":"d","rate":2.5}`)
	f.Add(`{"scenario":"attack-flood-burst","days":62}`)
	f.Add(`{"scenario":"x","days":-1}`)
	f.Add(`{"scenario":"benign-control","extra":true}`)
	f.Add(`[{"scenario":"benign-control"}]`)
	f.Add(`{"scenario":1e309}`)
	f.Fuzz(func(t *testing.T, body string) {
		cfg, sc, err := DecodeConfig([]byte(body))
		if err != nil {
			return
		}
		// Whatever decodes must be a fully-validated, buildable config:
		// the invariants sgsim relies on without re-checking.
		if sc == nil {
			t.Fatal("nil scenario with nil error")
		}
		spec := sc.Spec()
		if cfg.Scenario != spec.Name {
			t.Fatalf("config names %q, resolved %q", cfg.Scenario, spec.Name)
		}
		if cfg.Days < spec.MinDays || cfg.Days > maxDays {
			t.Fatalf("days %d outside [%d,%d]", cfg.Days, spec.MinDays, maxDays)
		}
		if cfg.Sensors < 4 || cfg.Sensors > 100 {
			t.Fatalf("sensors %d escaped validation", cfg.Sensors)
		}
		if cfg.Seed == 0 || cfg.Deployment == "" || cfg.Rate < 0 {
			t.Fatalf("defaults missing: %+v", cfg)
		}
		if !safeDeployment(cfg.Deployment) || len(cfg.Deployment) > 128 {
			t.Fatalf("deployment %q escaped the charset validation", cfg.Deployment)
		}
	})
}
