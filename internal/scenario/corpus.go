package scenario

// The corpus. Each scenario is a deterministic campaign builder: a synthetic
// GDI deployment (internal/gdi) with faults (internal/fault), coordinated
// attacks (internal/attack), or wire-level manipulation (replayed duplicates,
// forged frames, floods) layered on, plus the per-window ground truth.
//
// Conventions shared by every entry:
//
//   - The observation window is 1h (the fleet default), and every anomaly
//     onset is at 48h: the collector spends the first 24h bootstrapping its
//     model states and the next 24h seeing clean traffic, so detection
//     latency is measured against a warmed-up detector.
//   - Traces are generated with MalformProb 0 — malformed frames never reach
//     a detector, so they would only blur the labels.
//   - Wire-level forgeries carry Seq 0: an attacker injecting frames does
//     not participate in the producer's retransmission numbering. Replayed
//     duplicates keep their original stale sequence numbers — the ingest
//     dedup high-water mark is exactly the defense they probe.

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sensorguard/internal/attack"
	"sensorguard/internal/fault"
	"sensorguard/internal/gdi"
	"sensorguard/internal/ingest"
	"sensorguard/internal/network"
	"sensorguard/internal/sensor"
	"sensorguard/internal/vecmat"
)

const (
	// corpusWindow is the observation window every campaign's truth is
	// expressed in; it must match the collector's Config.Window.
	corpusWindow = time.Hour
	// corpusOnset is when every campaign's anomaly begins.
	corpusOnset = 48 * time.Hour
	// corpusDays is the default campaign length: 48h warm-up plus four days
	// of anomaly — enough windows for stable rates, short enough that the
	// full corpus scores in seconds.
	corpusDays = 6
)

// baseGen maps a campaign config onto the synthetic GDI generator.
func baseGen(cfg Config) gdi.GenerateConfig {
	g := gdi.DefaultGenerateConfig()
	g.Sensors = cfg.Sensors
	g.Days = cfg.Days
	g.MalformProb = 0
	g.Seed = cfg.Seed
	return g
}

// toWire numbers a trace into deployment-tagged wire readings, Seq 1..n in
// ship order.
func toWire(tr gdi.Trace, deployment string) []ingest.Reading {
	out := make([]ingest.Reading, len(tr.Readings))
	for i, r := range tr.Readings {
		out[i] = ingest.Reading{Deployment: deployment, Seq: uint64(i + 1), Reading: r.Clone()}
	}
	return out
}

// onsetSpec is one ground-truth phase transition.
type onsetSpec struct {
	at    time.Duration
	label Label
	phase string
}

func labelRank(l Label) int {
	switch l {
	case LabelError:
		return 1
	case LabelAttack:
		return 2
	default:
		return 0
	}
}

// buildTruth lays cumulative labels over every window the stream covers:
// benign until the first onset, then each onset's label from its window to
// the end, attack outranking error. Later onsets of equal or higher rank
// take over the phase name.
func buildTruth(readings []ingest.Reading, w time.Duration, onsets ...onsetSpec) []WindowTruth {
	last := 0
	for _, r := range readings {
		if idx := network.WindowIndex(r.Time, w); idx > last {
			last = idx
		}
	}
	truth := make([]WindowTruth, last+1)
	for i := range truth {
		truth[i] = WindowTruth{Window: i, Label: LabelBenign, Phase: "clean"}
	}
	for _, o := range onsets {
		for i := network.WindowIndex(o.at, w); i <= last; i++ {
			if labelRank(o.label) >= labelRank(truth[i].Label) {
				truth[i].Label = o.label
				truth[i].Phase = o.phase
			}
		}
	}
	return truth
}

// traceRun is the common assembly for scenarios that are fully described by
// generator options: generate, number, label.
func traceRun(cfg Config, onsets []onsetSpec, opts ...network.Option) (*Run, error) {
	tr, err := gdi.Generate(baseGen(cfg), opts...)
	if err != nil {
		return nil, err
	}
	readings := toWire(tr, cfg.Deployment)
	return &Run{
		Window:   corpusWindow,
		Readings: readings,
		Truth:    buildTruth(readings, corpusWindow, onsets...),
	}, nil
}

// newAdversary builds a seeded, jittered adversary over the GDI ranges.
func newAdversary(ids []int, seed int64, jitter float64) (*attack.Adversary, error) {
	adv, err := attack.NewAdversary(ids, gdi.Ranges())
	if err != nil {
		return nil, err
	}
	adv.Reseed(seed)
	if err := adv.SetJitter(jitter); err != nil {
		return nil, err
	}
	return adv, nil
}

// sensorIDs returns [0, n).
func sensorIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// minoritySize is how many sensors the minority-attack campaigns compromise:
// a third of the fleet (3 of the paper's 10), at least one.
func minoritySize(sensors int) int {
	if n := sensors / 3; n >= 1 {
		return n
	}
	return 1
}

// faultySensor picks the single faulty mote, scaled so the default fleet
// uses sensor 6 — the paper's degraded GDI humidity sensor.
func faultySensor(sensors int) int {
	if sensors > 6 {
		return 6
	}
	return sensors - 1
}

// keyed pairs a wire reading with the event-time position it is shipped at —
// replayed duplicates ship at original-time + delay, forged frames at their
// fabricated timestamps.
type keyed struct {
	at time.Duration
	r  ingest.Reading
}

// mergeExtras interleaves forged/replayed frames into a legit stream by ship
// time. The sort is stable over a by-key ordering, so the legit readings
// (keyed by their own timestamps, already ascending) keep their relative
// order and their sequence numbers stay monotonic on the wire.
func mergeExtras(legit []ingest.Reading, extras []keyed) []ingest.Reading {
	all := make([]keyed, 0, len(legit)+len(extras))
	for _, r := range legit {
		all = append(all, keyed{at: r.Time, r: r})
	}
	all = append(all, extras...)
	sort.SliceStable(all, func(i, j int) bool { return all[i].at < all[j].at })
	out := make([]ingest.Reading, len(all))
	for i, k := range all {
		out[i] = k.r
	}
	return out
}

// creationTarget is the fake environment state the creation-style campaigns
// inject: a cool, damp reading well inside the admissible ranges but away
// from the GDI summer profile.
func creationTarget() vecmat.Vector { return vecmat.Vector{14, 66} }

func init() {
	registerBenignControl()
	registerBenignChurn()
	registerErrorStuck()
	registerErrorNoise()
	registerErrorInterference()
	registerAttackCreationMinority()
	registerAttackCollusionMajority()
	registerAttackReplayStale()
	registerAttackSpoofInject()
	registerAttackFloodBurst()
	registerCompositeDriftAttack()
}

// benign-control: the null campaign. Any alarm here is a false alarm, so its
// score anchors the corpus false-alarm baseline.
func registerBenignControl() {
	register(&builder{
		spec: Spec{
			Name:        "benign-control",
			Class:       LabelBenign,
			Summary:     "clean GDI deployment, no faults, no adversary — the false-alarm baseline",
			Expected:    "none",
			MinDays:     3,
			DefaultDays: corpusDays,
			Knobs: []Knob{
				{Name: "loss_prob", Value: "0.12", Effect: "GDI-calibrated packet loss"},
			},
		},
		build: func(cfg Config, _ Spec) (*Run, error) {
			return traceRun(cfg, nil)
		},
	})
}

// benign-churn: sensors join, leave, and reboot — population change that a
// detector must not confuse with faults or attacks. One extra mote joins at
// 72h (it is silent before that), one departs for good at 96h, and one
// drops off for 90 minutes at 60h (a firmware reset).
func registerBenignChurn() {
	register(&builder{
		spec: Spec{
			Name:        "benign-churn",
			Class:       LabelBenign,
			Summary:     "sensor churn: late join at 72h, permanent leave at 96h, 90-minute firmware reset at 60h",
			Expected:    "none",
			MinDays:     5,
			DefaultDays: corpusDays,
			Knobs: []Knob{
				{Name: "join", Value: "sensor N at 72h", Effect: "an unseen mote starts reporting mid-campaign"},
				{Name: "leave", Value: "sensor 1 at 96h", Effect: "a mote goes permanently silent"},
				{Name: "reset", Value: "sensor 2, 60h–61h30m", Effect: "a reboot gap in one mote's stream"},
			},
		},
		build: func(cfg Config, _ Spec) (*Run, error) {
			plan, err := fault.NewPlan(
				// The joining mote exists from t=0 but every message before
				// 72h is suppressed — to the collector it appears at 72h.
				fault.Schedule{Sensor: cfg.Sensors, Injector: fault.Outage{}, End: 72 * time.Hour},
				fault.Schedule{Sensor: 1, Injector: fault.Outage{}, Start: 96 * time.Hour},
				fault.Schedule{Sensor: 2, Injector: fault.Outage{}, Start: 60 * time.Hour, End: 60*time.Hour + 90*time.Minute},
			)
			if err != nil {
				return nil, err
			}
			gen := baseGen(cfg)
			gen.Sensors = cfg.Sensors + 1 // the joiner
			tr, err := gdi.Generate(gen, network.WithFaults(plan))
			if err != nil {
				return nil, err
			}
			readings := toWire(tr, cfg.Deployment)
			return &Run{
				Window:   corpusWindow,
				Readings: readings,
				Truth:    buildTruth(readings, corpusWindow),
			}, nil
		},
	})
}

// error-stuck: the paper's canonical fault — one sensor's readings freeze at
// a fixed value (§3.3 Stuck-at).
func registerErrorStuck() {
	register(&builder{
		spec: Spec{
			Name:        "error-stuck",
			Class:       LabelError,
			Summary:     "one sensor stuck at (18°C, 55%) from 48h — the paper's Stuck-at error",
			Expected:    "stuck-at",
			MinDays:     4,
			DefaultDays: corpusDays,
			Knobs: []Knob{
				{Name: "value", Value: "(18, 55)", Effect: "the frozen reading"},
			},
		},
		build: func(cfg Config, _ Spec) (*Run, error) {
			plan, err := fault.NewPlan(fault.Schedule{
				Sensor:   faultySensor(cfg.Sensors),
				Injector: fault.StuckAt{Value: vecmat.Vector{18, 55}},
				Start:    corpusOnset,
			})
			if err != nil {
				return nil, err
			}
			return traceRun(cfg,
				[]onsetSpec{{at: corpusOnset, label: LabelError, phase: "stuck-at"}},
				network.WithFaults(plan))
		},
	})
}

// error-noise: one sensor's variance explodes while its mean stays honest
// (§3.3 Random-Noise).
func registerErrorNoise() {
	register(&builder{
		spec: Spec{
			Name:        "error-noise",
			Class:       LabelError,
			Summary:     "one sensor develops zero-mean noise (σ 6°C, 15%) from 48h — the Random-Noise error",
			Expected:    "random-noise",
			MinDays:     4,
			DefaultDays: corpusDays,
			Knobs: []Knob{
				{Name: "sigma", Value: "(6, 15)", Effect: "per-attribute noise standard deviation"},
			},
		},
		build: func(cfg Config, _ Spec) (*Run, error) {
			noise, err := fault.NewRandomNoise([]float64{6, 15}, cfg.Seed+11)
			if err != nil {
				return nil, err
			}
			plan, err := fault.NewPlan(fault.Schedule{
				Sensor:   4 % cfg.Sensors,
				Injector: noise,
				Start:    corpusOnset,
			})
			if err != nil {
				return nil, err
			}
			return traceRun(cfg,
				[]onsetSpec{{at: corpusOnset, label: LabelError, phase: "random-noise"}},
				network.WithFaults(plan))
		},
	})
}

// error-interference: two independent faults at once — a miscalibrated
// sensor and a dying one thinning out. Independent faults are still errors;
// the detector must not read their coincidence as coordination.
func registerErrorInterference() {
	register(&builder{
		spec: Spec{
			Name:        "error-interference",
			Class:       LabelError,
			Summary:     "two independent faults from 48h: a 1.3× calibration error plus an intermittent additive fault",
			Expected:    "calibration",
			MinDays:     4,
			DefaultDays: corpusDays,
			Knobs: []Knob{
				{Name: "factors", Value: "(1.3, 0.8)", Effect: "multiplicative miscalibration"},
				{Name: "offsets", Value: "(7, -9)", Effect: "second sensor's additive offset"},
				{Name: "drop_rate", Value: "0.5", Effect: "second sensor's message thinning"},
			},
		},
		build: func(cfg Config, _ Spec) (*Run, error) {
			thin, err := fault.NewIntermittent(0.5, cfg.Seed+13)
			if err != nil {
				return nil, err
			}
			plan, err := fault.NewPlan(
				fault.Schedule{
					Sensor:   faultySensor(cfg.Sensors),
					Injector: fault.Calibration{Factors: vecmat.Vector{1.3, 0.8}},
					Start:    corpusOnset,
				},
				fault.Schedule{
					Sensor:   1,
					Injector: fault.Additive{Offsets: vecmat.Vector{7, -9}},
					Start:    corpusOnset,
				},
				fault.Schedule{Sensor: 1, Injector: thin, Start: corpusOnset},
			)
			if err != nil {
				return nil, err
			}
			return traceRun(cfg,
				[]onsetSpec{{at: corpusOnset, label: LabelError, phase: "interference"}},
				network.WithFaults(plan))
		},
	})
}

// attack-creation-minority: the paper's Dynamic Creation mounted by a
// minority (a third of the fleet), gated to the small hours of every night —
// the part-time variant that produces the split-row B^CO signature.
func registerAttackCreationMinority() {
	register(&builder{
		spec: Spec{
			Name:        "attack-creation-minority",
			Class:       LabelAttack,
			Summary:     "a third of the fleet fakes a (14°C, 66%) state nightly 00:00–03:30 from 48h — gated Dynamic Creation",
			Expected:    "dynamic-creation",
			MinDays:     5,
			DefaultDays: corpusDays,
			Knobs: []Knob{
				{Name: "malicious", Value: "sensors/3", Effect: "compromised minority size"},
				{Name: "gate", Value: "nightly 00:00–03:30", Effect: "attack strikes only part of each day"},
				{Name: "jitter", Value: "σ 0.3", Effect: "per-sensor spread of the solved injection"},
			},
		},
		build: func(cfg Config, _ Spec) (*Run, error) {
			adv, err := newAdversary(sensorIDs(minoritySize(cfg.Sensors)), cfg.Seed+17, 0.3)
			if err != nil {
				return nil, err
			}
			active, err := attack.PeriodicGate(24*time.Hour, 0, 3*time.Hour+30*time.Minute)
			if err != nil {
				return nil, err
			}
			strat := &attack.Gated{
				Inner:  &attack.DynamicCreation{Adversary: adv, Target: creationTarget(), Start: corpusOnset},
				Active: active,
			}
			return traceRun(cfg,
				[]onsetSpec{{at: corpusOnset, label: LabelAttack, phase: "gated-creation"}},
				network.WithAttack(strat))
		},
	})
}

// attack-collusion-majority: a colluding majority breaks the quorum
// assumption the per-window diagnosis rests on — the honest sensors become
// the outvoted minority. The structural B^CO evidence is what's left.
func registerAttackCollusionMajority() {
	register(&builder{
		spec: Spec{
			Name:        "attack-collusion-majority",
			Class:       LabelAttack,
			Summary:     "a colluding majority displaces the mean by (+5°C, −12%) from 48h, outvoting the honest minority",
			Expected:    "dynamic-change",
			MinDays:     4,
			DefaultDays: corpusDays,
			Knobs: []Knob{
				{Name: "malicious", Value: "sensors/2 + 1", Effect: "compromised majority size"},
				{Name: "offset", Value: "(+5, −12)", Effect: "Dynamic-Change displacement"},
				{Name: "jitter", Value: "σ 0.3", Effect: "per-sensor spread of the solved injection"},
			},
		},
		build: func(cfg Config, _ Spec) (*Run, error) {
			adv, err := newAdversary(sensorIDs(cfg.Sensors/2+1), cfg.Seed+19, 0.3)
			if err != nil {
				return nil, err
			}
			strat := &attack.DynamicChange{
				Adversary: adv,
				Offset:    vecmat.Vector{5, -12},
				Start:     corpusOnset,
			}
			return traceRun(cfg,
				[]onsetSpec{{at: corpusOnset, label: LabelAttack, phase: "collusion"}},
				network.WithAttack(strat))
		},
	})
}

// attack-replay-stale: compromised sensors substitute their own 12h-old
// readings (plausible values, broken temporal alignment), and the attacker
// also re-posts a captured wire segment verbatim — stale timestamps, stale
// sequence numbers — which the ingest dedup high-water mark must swallow.
func registerAttackReplayStale() {
	register(&builder{
		spec: Spec{
			Name:        "attack-replay-stale",
			Class:       LabelAttack,
			Summary:     "a third of the fleet replays its own 12h-old readings from 48h; captured frames are also re-posted with stale seqs",
			Expected:    "dynamic-change",
			MinDays:     4,
			DefaultDays: corpusDays,
			Knobs: []Knob{
				{Name: "delay", Value: "12h", Effect: "staleness of the replayed values (day↔night inversion)"},
				{Name: "dup_segment", Value: "36h–44h", Effect: "captured wire segment re-posted verbatim at +12h"},
			},
		},
		build: func(cfg Config, _ Spec) (*Run, error) {
			adv, err := newAdversary(sensorIDs(minoritySize(cfg.Sensors)), cfg.Seed+23, 0)
			if err != nil {
				return nil, err
			}
			strat := &attack.Replay{Adversary: adv, Delay: 12 * time.Hour, Start: corpusOnset}
			tr, err := gdi.Generate(baseGen(cfg), network.WithAttack(strat))
			if err != nil {
				return nil, err
			}
			legit := toWire(tr, cfg.Deployment)
			// The wire-replay half: every captured frame between 36h and 44h
			// is re-posted 12h later, timestamp and sequence number intact.
			// The dedup high-water mark must drop all of them; any that leak
			// through would land in long-closed windows anyway.
			var dups []keyed
			for _, r := range legit {
				if r.Time >= 36*time.Hour && r.Time < 44*time.Hour {
					dups = append(dups, keyed{at: r.Time + 12*time.Hour, r: r})
				}
			}
			readings := mergeExtras(legit, dups)
			return &Run{
				Window:   corpusWindow,
				Readings: readings,
				Truth: buildTruth(readings, corpusWindow,
					onsetSpec{at: corpusOnset, label: LabelAttack, phase: "replay"}),
			}, nil
		},
	})
}

// attack-spoof-inject: the attacker never compromises a real mote — it
// forges frames from three phantom sensors under a stolen deployment key,
// reporting a fabricated state on the legitimate cadence.
func registerAttackSpoofInject() {
	register(&builder{
		spec: Spec{
			Name:        "attack-spoof-inject",
			Class:       LabelAttack,
			Summary:     "three phantom sensors forge (14°C, 66%) frames under the deployment key from 48h — pure wire-level spoofing",
			Expected:    "dynamic-creation",
			MinDays:     4,
			DefaultDays: corpusDays,
			Knobs: []Knob{
				{Name: "phantoms", Value: "sensors 100–102", Effect: "forged IDs never seen during bootstrap"},
				{Name: "target", Value: "(14, 66)", Effect: "fabricated environment state"},
				{Name: "jitter", Value: "σ (0.5, 1.0)", Effect: "per-frame spread so phantoms don't agree exactly"},
			},
		},
		build: func(cfg Config, _ Spec) (*Run, error) {
			tr, err := gdi.Generate(baseGen(cfg))
			if err != nil {
				return nil, err
			}
			legit := toWire(tr, cfg.Deployment)
			end := time.Duration(cfg.Days) * 24 * time.Hour
			rng := rand.New(rand.NewSource(cfg.Seed + 29))
			target := creationTarget()
			var forged []keyed
			for t := corpusOnset; t < end; t += 5 * time.Minute {
				for p := 0; p < 3; p++ {
					v := vecmat.Vector{
						target[0] + rng.NormFloat64()*0.5,
						target[1] + rng.NormFloat64()*1.0,
					}
					forged = append(forged, keyed{at: t, r: ingest.Reading{
						Deployment: cfg.Deployment,
						// Seq 0: forged frames sit outside the producer's
						// retransmission numbering.
						Reading: sensor.Reading{
							Sensor: 100 + p,
							Time:   t,
							Values: sensor.ClampVector(v, gdi.Ranges()),
						},
					}})
				}
			}
			readings := mergeExtras(legit, forged)
			return &Run{
				Window:   corpusWindow,
				Readings: readings,
				Truth: buildTruth(readings, corpusWindow,
					onsetSpec{at: corpusOnset, label: LabelAttack, phase: "spoof"}),
			}, nil
		},
	})
}

// attack-flood-burst: three compromised motes burst 20×-oversampled forged
// frames pinned at the creation target for two hours a day — a campaign
// that pressures the collector's queues and overflow policy while also
// carrying a classification signal.
func registerAttackFloodBurst() {
	register(&builder{
		spec: Spec{
			Name:        "attack-flood-burst",
			Class:       LabelAttack,
			Summary:     "three motes flood 15s-cadence forged (14°C, 66%) frames for 2h daily from 48h — burst load plus injection",
			Expected:    "dynamic-creation",
			MinDays:     4,
			DefaultDays: corpusDays,
			Knobs: []Knob{
				{Name: "burst", Value: "2h every 24h", Effect: "daily flood window"},
				{Name: "cadence", Value: "15s (20× oversampled)", Effect: "queue pressure during bursts"},
			},
		},
		build: func(cfg Config, _ Spec) (*Run, error) {
			tr, err := gdi.Generate(baseGen(cfg))
			if err != nil {
				return nil, err
			}
			legit := toWire(tr, cfg.Deployment)
			end := time.Duration(cfg.Days) * 24 * time.Hour
			rng := rand.New(rand.NewSource(cfg.Seed + 31))
			target := creationTarget()
			flooders := sensorIDs(minoritySize(cfg.Sensors))
			var forged []keyed
			for burst := corpusOnset; burst < end; burst += 24 * time.Hour {
				stop := burst + 2*time.Hour
				if stop > end {
					stop = end
				}
				for t := burst; t < stop; t += 15 * time.Second {
					for _, id := range flooders {
						v := vecmat.Vector{
							target[0] + rng.NormFloat64()*0.3,
							target[1] + rng.NormFloat64()*0.6,
						}
						forged = append(forged, keyed{at: t, r: ingest.Reading{
							Deployment: cfg.Deployment,
							Reading: sensor.Reading{
								Sensor: id,
								Time:   t,
								Values: sensor.ClampVector(v, gdi.Ranges()),
							},
						}})
					}
				}
			}
			readings := mergeExtras(legit, forged)
			return &Run{
				Window:   corpusWindow,
				Readings: readings,
				Truth: buildTruth(readings, corpusWindow,
					onsetSpec{at: corpusOnset, label: LabelAttack, phase: "flood"}),
			}, nil
		},
	})
}

// composite-drift-attack: a sensor degrades (DecayToStuck — the paper's
// GDI sensor 6 trajectory) and, three days into that, a minority mounts
// Dynamic Creation. The truth transitions benign → error → attack; the
// scorer's confusion matrix shows whether the detector tracks both.
func registerCompositeDriftAttack() {
	register(&builder{
		spec: Spec{
			Name:        "composite-drift-attack",
			Class:       LabelAttack,
			Summary:     "sensor decay from 48h (error), then a minority Dynamic Creation from 120h on top — error and attack coexist",
			Expected:    "dynamic-creation",
			MinDays:     7,
			DefaultDays: 8,
			Knobs: []Knob{
				{Name: "decay", Value: "τ 12h to (2, 3)", Effect: "exponential degradation to a near-zero floor"},
				{Name: "attack_onset", Value: "120h", Effect: "creation attack lands on an already-degraded fleet"},
			},
		},
		build: func(cfg Config, _ Spec) (*Run, error) {
			plan, err := fault.NewPlan(fault.Schedule{
				Sensor:   faultySensor(cfg.Sensors),
				Injector: fault.DecayToStuck{Floor: vecmat.Vector{2, 3}, TimeConstant: 12 * time.Hour},
				Start:    corpusOnset,
			})
			if err != nil {
				return nil, err
			}
			adv, err := newAdversary(sensorIDs(minoritySize(cfg.Sensors)), cfg.Seed+37, 0.3)
			if err != nil {
				return nil, err
			}
			strat := &attack.DynamicCreation{
				Adversary: adv,
				Target:    creationTarget(),
				Start:     120 * time.Hour,
			}
			return traceRun(cfg,
				[]onsetSpec{
					{at: corpusOnset, label: LabelError, phase: "drift"},
					{at: 120 * time.Hour, label: LabelAttack, phase: "drift+creation"},
				},
				network.WithFaults(plan), network.WithAttack(strat))
		},
	})
}

// sanity check at init: the corpus the issue commits to.
func init() {
	if len(corpus) < 8 {
		panic(fmt.Sprintf("scenario: corpus holds %d scenarios, need at least 8", len(corpus)))
	}
}
