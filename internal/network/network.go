// Package network simulates the distributed deployment of §3.1: sensor
// nodes periodically sample the environment and send ⟨t, p⟩ messages to a
// single collector node over a lossy radio. The collector partitions the
// delivered observations into time windows of duration w (Eq. 1) for the
// detector.
//
// The link model reproduces the data-quality problems the paper reports on
// the GDI traces: messages can be lost outright (missing packets) or
// delivered malformed (garbage attribute values), which is what makes
// spurious model states appear in the constructed models (§4).
package network

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sensorguard/internal/attack"
	"sensorguard/internal/env"
	"sensorguard/internal/fault"
	"sensorguard/internal/sensor"
)

// LinkConfig models the radio between nodes and the collector.
type LinkConfig struct {
	// LossProb is the probability a message is lost in transit.
	LossProb float64
	// MalformProb is the probability a delivered message carries garbage
	// attribute values (uniform over the admissible ranges).
	MalformProb float64
	// PerSensorLoss overrides LossProb for specific sensors — real
	// deployments have weak links (distant or obstructed motes).
	PerSensorLoss map[int]float64
}

// Validate reports whether the link probabilities are usable.
func (l LinkConfig) Validate() error {
	if l.LossProb < 0 || l.LossProb > 1 || l.MalformProb < 0 || l.MalformProb > 1 {
		return fmt.Errorf("network: link probabilities (%v, %v) outside [0,1]", l.LossProb, l.MalformProb)
	}
	for id, p := range l.PerSensorLoss {
		if p < 0 || p > 1 {
			return fmt.Errorf("network: sensor %d loss probability %v outside [0,1]", id, p)
		}
	}
	return nil
}

// lossFor returns the loss probability for a sensor.
func (l LinkConfig) lossFor(sensorID int) float64 {
	if p, ok := l.PerSensorLoss[sensorID]; ok {
		return p
	}
	return l.LossProb
}

// Config parameterises a simulated deployment.
type Config struct {
	// Sensors is the number of nodes (the paper's K = 10).
	Sensors int
	// SamplePeriod is the sensing interval (the paper's motes sample
	// every 5 minutes).
	SamplePeriod time.Duration
	// Noise is the per-attribute measurement noise σ of every device.
	Noise []float64
	// Ranges bounds each attribute (also used to draw malformed values).
	Ranges []sensor.Range
	// Link models the radio.
	Link LinkConfig
	// Seed drives every random stream in the deployment.
	Seed int64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Sensors <= 0 {
		return errors.New("network: need at least one sensor")
	}
	if c.SamplePeriod <= 0 {
		return errors.New("network: sample period must be positive")
	}
	if len(c.Noise) == 0 {
		return errors.New("network: need at least one attribute")
	}
	if len(c.Ranges) != 0 && len(c.Ranges) != len(c.Noise) {
		return fmt.Errorf("network: %d ranges for %d attributes", len(c.Ranges), len(c.Noise))
	}
	return c.Link.Validate()
}

// Deployment is a reproducible simulated sensor network.
type Deployment struct {
	cfg     Config
	field   env.Field
	devices []*sensor.Device
	faults  *fault.Plan
	attack  attack.Strategy
	link    *rand.Rand
}

// Option customises a deployment.
type Option func(*Deployment)

// WithFaults installs a fault plan: scheduled per-sensor corruptions.
func WithFaults(p *fault.Plan) Option {
	return func(d *Deployment) { d.faults = p }
}

// WithAttack installs an attack strategy: a coordinated adversary that
// rewrites malicious sensors' readings each round.
func WithAttack(s attack.Strategy) Option {
	return func(d *Deployment) { d.attack = s }
}

// New builds a deployment sensing the given environment field.
func New(cfg Config, field env.Field, opts ...Option) (*Deployment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if field.Dim() != len(cfg.Noise) {
		return nil, fmt.Errorf("network: field has %d attributes, config %d", field.Dim(), len(cfg.Noise))
	}
	d := &Deployment{
		cfg:   cfg,
		field: field,
		link:  rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := 0; i < cfg.Sensors; i++ {
		dev, err := sensor.NewDevice(i, cfg.Noise, cfg.Ranges, cfg.Seed+int64(i)+1)
		if err != nil {
			return nil, err
		}
		d.devices = append(d.devices, dev)
	}
	for _, o := range opts {
		o(d)
	}
	return d, nil
}

// Sensors returns the number of nodes.
func (d *Deployment) Sensors() int { return d.cfg.Sensors }

// Round simulates one sampling instant: every device samples the
// environment, scheduled faults corrupt their owners' readings, the attack
// strategy (if any) rewrites malicious readings with full knowledge of the
// round, and finally the link drops or malforms messages. The returned slice
// contains only the messages the collector actually receives.
func (d *Deployment) Round(t time.Duration) ([]sensor.Reading, error) {
	truth := d.field.At(t)
	round := make([]sensor.Reading, 0, len(d.devices))
	for _, dev := range d.devices {
		r, err := dev.Sample(t, truth)
		if err != nil {
			return nil, fmt.Errorf("sensor %d: %w", dev.ID(), err)
		}
		if d.faults != nil {
			values, transmitted := d.faults.Apply(dev.ID(), t, r.Values)
			if !transmitted {
				continue
			}
			r.Values = values
		}
		round = append(round, r)
	}
	if d.attack != nil {
		round = d.attack.Apply(t, round)
	}

	delivered := round[:0]
	for _, r := range round {
		if d.link.Float64() < d.cfg.Link.lossFor(r.Sensor) {
			continue // missing packet
		}
		if d.link.Float64() < d.cfg.Link.MalformProb {
			r = d.malform(r)
		}
		delivered = append(delivered, r)
	}
	return delivered, nil
}

// malform replaces the message payload with garbage drawn uniformly from the
// admissible ranges (or a wild default when no ranges are configured).
func (d *Deployment) malform(r sensor.Reading) sensor.Reading {
	out := r.Clone()
	for i := range out.Values {
		lo, hi := -1e3, 1e3
		if i < len(d.cfg.Ranges) {
			lo, hi = d.cfg.Ranges[i].Lo, d.cfg.Ranges[i].Hi
		}
		out.Values[i] = lo + d.link.Float64()*(hi-lo)
	}
	return out
}

// Run simulates rounds from start (inclusive) to end (exclusive) at the
// sample period, invoking deliver with each round's delivered messages.
func (d *Deployment) Run(start, end time.Duration, deliver func(t time.Duration, msgs []sensor.Reading) error) error {
	if deliver == nil {
		return errors.New("network: nil deliver callback")
	}
	if end < start {
		return fmt.Errorf("network: end %v before start %v", end, start)
	}
	for t := start; t < end; t += d.cfg.SamplePeriod {
		msgs, err := d.Round(t)
		if err != nil {
			return err
		}
		if err := deliver(t, msgs); err != nil {
			return err
		}
	}
	return nil
}

// SortReadings orders readings by (Time, Sensor) — used to re-sequence
// concurrent deliveries before windowing.
func SortReadings(rs []sensor.Reading) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Time != rs[j].Time {
			return rs[i].Time < rs[j].Time
		}
		return rs[i].Sensor < rs[j].Sensor
	})
}
