package network

import (
	"errors"
	"math"
	"testing"
	"time"

	"sensorguard/internal/attack"
	"sensorguard/internal/env"
	"sensorguard/internal/fault"
	"sensorguard/internal/sensor"
	"sensorguard/internal/vecmat"
)

func testConfig() Config {
	return Config{
		Sensors:      10,
		SamplePeriod: 5 * time.Minute,
		Noise:        []float64{0.3, 0.8},
		Ranges:       []sensor.Range{{Lo: -40, Hi: 60}, {Lo: 0, Hi: 100}},
		Seed:         1,
	}
}

func constantField(temp, hum float64) env.Field {
	return env.Field{env.Constant(temp), env.Constant(hum)}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no sensors", func(c *Config) { c.Sensors = 0 }},
		{"zero period", func(c *Config) { c.SamplePeriod = 0 }},
		{"no attributes", func(c *Config) { c.Noise = nil }},
		{"range mismatch", func(c *Config) { c.Ranges = c.Ranges[:1] }},
		{"bad loss prob", func(c *Config) { c.Link.LossProb = 1.5 }},
		{"bad malform prob", func(c *Config) { c.Link.MalformProb = -0.1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if err := testConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNewRejectsFieldMismatch(t *testing.T) {
	if _, err := New(testConfig(), env.Field{env.Constant(1)}); err == nil {
		t.Error("field/noise dimension mismatch accepted")
	}
}

func TestRoundDeliversAllWithoutLoss(t *testing.T) {
	d, err := New(testConfig(), constantField(20, 70))
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := d.Round(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 10 {
		t.Fatalf("delivered %d messages, want 10", len(msgs))
	}
	for _, m := range msgs {
		if math.Abs(m.Values[0]-20) > 3 || math.Abs(m.Values[1]-70) > 5 {
			t.Errorf("sensor %d reading %v far from truth (20,70)", m.Sensor, m.Values)
		}
	}
}

func TestRoundLossRate(t *testing.T) {
	cfg := testConfig()
	cfg.Link.LossProb = 0.3
	d, err := New(cfg, constantField(20, 70))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	const rounds = 2000
	for i := 0; i < rounds; i++ {
		msgs, err := d.Round(time.Duration(i) * cfg.SamplePeriod)
		if err != nil {
			t.Fatal(err)
		}
		total += len(msgs)
	}
	rate := float64(total) / float64(rounds*cfg.Sensors)
	if math.Abs(rate-0.7) > 0.03 {
		t.Errorf("delivery rate = %v, want ≈0.7", rate)
	}
}

func TestPerSensorLoss(t *testing.T) {
	cfg := testConfig()
	cfg.Link.LossProb = 0
	cfg.Link.PerSensorLoss = map[int]float64{3: 0.8}
	d, err := New(cfg, constantField(20, 70))
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	const rounds = 1500
	for i := 0; i < rounds; i++ {
		msgs, err := d.Round(time.Duration(i) * cfg.SamplePeriod)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			counts[m.Sensor]++
		}
	}
	if counts[0] != rounds {
		t.Errorf("sensor 0 delivered %d/%d, want all", counts[0], rounds)
	}
	rate := float64(counts[3]) / float64(rounds)
	if math.Abs(rate-0.2) > 0.04 {
		t.Errorf("weak sensor delivery rate = %v, want ≈0.2", rate)
	}

	cfg.Link.PerSensorLoss = map[int]float64{3: 1.5}
	if err := cfg.Validate(); err == nil {
		t.Error("invalid per-sensor loss accepted")
	}
}

func TestRoundMalformedWithinRanges(t *testing.T) {
	cfg := testConfig()
	cfg.Link.MalformProb = 1 // every delivered message malformed
	d, err := New(cfg, constantField(20, 70))
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := d.Round(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		if m.Values[0] < -40 || m.Values[0] > 60 || m.Values[1] < 0 || m.Values[1] > 100 {
			t.Errorf("malformed values %v escaped admissible ranges", m.Values)
		}
	}
}

func TestRoundAppliesFaultsThenAttack(t *testing.T) {
	plan, err := fault.NewPlan(fault.Schedule{
		Sensor:   6,
		Injector: fault.StuckAt{Value: vecmat.Vector{15, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	adv, err := attack.NewAdversary([]int{0, 1, 2}, testConfig().Ranges)
	if err != nil {
		t.Fatal(err)
	}
	strat := &attack.DynamicCreation{Adversary: adv, Target: vecmat.Vector{25, 69}}

	d, err := New(testConfig(), constantField(17, 86), WithFaults(plan), WithAttack(strat))
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := d.Round(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	bySensor := make(map[int]sensor.Reading, len(msgs))
	for _, m := range msgs {
		bySensor[m.Sensor] = m
	}
	if got := bySensor[6].Values; !got.Equal(vecmat.Vector{15, 1}, 0) {
		t.Errorf("faulty sensor 6 = %v, want stuck (15,1)", got)
	}
	// Malicious sensors carry the compensating injection; correct,
	// non-faulty sensors remain near truth.
	if got := bySensor[4].Values; math.Abs(got[0]-17) > 3 {
		t.Errorf("correct sensor 4 = %v, want near (17,86)", got)
	}
	if got := bySensor[0].Values; math.Abs(got[0]-17) < 3 {
		t.Errorf("malicious sensor 0 = %v, want far from truth", got)
	}
}

func TestRunStepsThroughTime(t *testing.T) {
	d, err := New(testConfig(), constantField(20, 70))
	if err != nil {
		t.Fatal(err)
	}
	var times []time.Duration
	err = d.Run(0, time.Hour, func(tt time.Duration, _ []sensor.Reading) error {
		times = append(times, tt)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 12 {
		t.Fatalf("delivered %d rounds over an hour at 5min, want 12", len(times))
	}
	if times[1]-times[0] != 5*time.Minute {
		t.Errorf("round spacing = %v", times[1]-times[0])
	}
	// Error propagation from the callback.
	wantErr := errors.New("stop")
	err = d.Run(0, time.Hour, func(time.Duration, []sensor.Reading) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Errorf("callback error not propagated: %v", err)
	}
	if err := d.Run(0, time.Hour, nil); err == nil {
		t.Error("nil callback accepted")
	}
	if err := d.Run(time.Hour, 0, func(time.Duration, []sensor.Reading) error { return nil }); err == nil {
		t.Error("inverted interval accepted")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []sensor.Reading {
		cfg := testConfig()
		cfg.Link.LossProb = 0.1
		d, err := New(cfg, constantField(20, 70))
		if err != nil {
			t.Fatal(err)
		}
		var all []sensor.Reading
		_ = d.Run(0, 2*time.Hour, func(_ time.Duration, msgs []sensor.Reading) error {
			all = append(all, msgs...)
			return nil
		})
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Sensor != b[i].Sensor || a[i].Time != b[i].Time || !a[i].Values.Equal(b[i].Values, 0) {
			t.Fatalf("replay diverged at message %d", i)
		}
	}
}

func TestRunConcurrentMatchesDeviceCount(t *testing.T) {
	d, err := New(testConfig(), constantField(20, 70))
	if err != nil {
		t.Fatal(err)
	}
	trace, err := d.RunConcurrent(0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 12*10 {
		t.Fatalf("concurrent trace has %d messages, want 120", len(trace))
	}
	// Re-sequenced ordering.
	for i := 1; i < len(trace); i++ {
		if trace[i].Time < trace[i-1].Time {
			t.Fatal("concurrent trace not time ordered")
		}
	}
}

func TestRunConcurrentRejectsAttack(t *testing.T) {
	adv, err := attack.NewAdversary([]int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(testConfig(), constantField(20, 70),
		WithAttack(&attack.DynamicCreation{Adversary: adv, Target: vecmat.Vector{1, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunConcurrent(0, time.Hour); err == nil {
		t.Error("concurrent run with attack accepted")
	}
}
