package network

import (
	"testing"
	"time"

	"sensorguard/internal/sensor"
	"sensorguard/internal/vecmat"
)

func r(sensorID int, t time.Duration) sensor.Reading {
	return sensor.Reading{Sensor: sensorID, Time: t, Values: vecmat.Vector{1}}
}

func TestNewWindowerValidation(t *testing.T) {
	if _, err := NewWindower(0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewWindower(time.Hour); err != nil {
		t.Errorf("valid width rejected: %v", err)
	}
}

func TestWindowerGroupsByWindow(t *testing.T) {
	w, err := NewWindower(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if out := w.Add(r(0, 10*time.Minute)); out != nil {
		t.Errorf("premature emit: %v", out)
	}
	if out := w.Add(r(1, 50*time.Minute)); out != nil {
		t.Errorf("premature emit: %v", out)
	}
	out := w.Add(r(0, 70*time.Minute))
	if len(out) != 1 {
		t.Fatalf("emitted %d windows, want 1", len(out))
	}
	win := out[0]
	if win.Index != 0 || win.Start != 0 || win.End != time.Hour {
		t.Errorf("window bounds = %+v", win)
	}
	if len(win.Readings) != 2 {
		t.Errorf("window holds %d readings, want 2", len(win.Readings))
	}
	last := w.Flush()
	if last == nil || last.Index != 1 || len(last.Readings) != 1 {
		t.Errorf("flush = %+v", last)
	}
	if w.Flush() != nil {
		t.Error("double flush emitted a window")
	}
}

func TestWindowerEmitsEmptyGapWindows(t *testing.T) {
	w, _ := NewWindower(time.Hour)
	w.Add(r(0, 0))
	out := w.Add(r(0, 3*time.Hour+time.Minute))
	if len(out) != 3 {
		t.Fatalf("emitted %d windows, want 3 (one full, two empty)", len(out))
	}
	if len(out[0].Readings) != 1 || len(out[1].Readings) != 0 || len(out[2].Readings) != 0 {
		t.Errorf("gap windows malformed: %v", out)
	}
	if out[1].Index != 1 || out[2].Index != 2 {
		t.Errorf("gap indices = %d,%d", out[1].Index, out[2].Index)
	}
}

func TestWindowerDropsLateMessages(t *testing.T) {
	w, _ := NewWindower(time.Hour)
	w.Add(r(0, 2*time.Hour))
	if out := w.Add(r(1, 30*time.Minute)); out != nil {
		t.Errorf("late message emitted windows: %v", out)
	}
	if w.Late() != 1 {
		t.Errorf("Late = %d, want 1", w.Late())
	}
	last := w.Flush()
	if len(last.Readings) != 1 {
		t.Errorf("late message leaked into window: %+v", last)
	}
}

func TestWindowerFirstWindowNotZero(t *testing.T) {
	w, _ := NewWindower(time.Hour)
	w.Add(r(0, 5*time.Hour))
	win := w.Flush()
	if win.Index != 5 {
		t.Errorf("first window index = %d, want 5", win.Index)
	}
}

func TestWindowAll(t *testing.T) {
	msgs := []sensor.Reading{
		r(0, 70*time.Minute), // out of order on purpose
		r(1, 10*time.Minute),
		r(0, 20*time.Minute),
	}
	wins, err := WindowAll(msgs, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 2 {
		t.Fatalf("windows = %d, want 2", len(wins))
	}
	if len(wins[0].Readings) != 2 || len(wins[1].Readings) != 1 {
		t.Errorf("window sizes = %d,%d", len(wins[0].Readings), len(wins[1].Readings))
	}
	if _, err := WindowAll(msgs, 0); err == nil {
		t.Error("zero width accepted")
	}
}
