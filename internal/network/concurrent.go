package network

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"sensorguard/internal/sensor"
)

// RunConcurrent simulates the deployment with one goroutine per node, each
// sampling its own device timeline and streaming messages to an in-process
// collector — the live (rather than replayed) operating mode of the system.
// The returned trace is re-sequenced by (time, sensor) before being handed
// back, since concurrent delivery is unordered.
//
// Coordinated attack strategies need a synchronous view of every round and
// are therefore rejected in this mode; per-sensor faults apply as usual.
func (d *Deployment) RunConcurrent(start, end time.Duration) ([]sensor.Reading, error) {
	if d.attack != nil {
		return nil, errors.New("network: coordinated attacks require the synchronous Run mode")
	}
	if end < start {
		return nil, errors.New("network: end before start")
	}

	// Buffer the collector channel so producers rarely block on the single
	// consumer, and size the trace for the lossless upper bound so the append
	// loop never regrows it mid-run.
	rounds := 0
	if end > start {
		rounds = int((end - start - 1) / d.cfg.SamplePeriod) + 1
	}
	msgs := make(chan sensor.Reading, 4*len(d.devices))
	var wg sync.WaitGroup
	errs := make([]error, len(d.devices))
	for i, dev := range d.devices {
		wg.Add(1)
		go func(i int, dev *sensor.Device) {
			defer wg.Done()
			link := rand.New(rand.NewSource(d.cfg.Seed + 1000 + int64(i)))
			for t := start; t < end; t += d.cfg.SamplePeriod {
				r, err := dev.Sample(t, d.field.At(t))
				if err != nil {
					errs[i] = err
					return
				}
				if d.faults != nil {
					values, transmitted := d.faults.Apply(dev.ID(), t, r.Values)
					if !transmitted {
						continue
					}
					r.Values = values
				}
				if link.Float64() < d.cfg.Link.lossFor(dev.ID()) {
					continue
				}
				if link.Float64() < d.cfg.Link.MalformProb {
					r = d.malformWith(link, r)
				}
				msgs <- r
			}
		}(i, dev)
	}

	done := make(chan struct{})
	trace := make([]sensor.Reading, 0, rounds*len(d.devices))
	go func() {
		defer close(done)
		for r := range msgs {
			trace = append(trace, r)
		}
	}()

	wg.Wait()
	close(msgs)
	<-done

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	SortReadings(trace)
	return trace, nil
}

// malformWith is malform with an explicit random source (the concurrent mode
// gives each node its own link stream to stay race-free).
func (d *Deployment) malformWith(rng *rand.Rand, r sensor.Reading) sensor.Reading {
	out := r.Clone()
	for i := range out.Values {
		lo, hi := -1e3, 1e3
		if i < len(d.cfg.Ranges) {
			lo, hi = d.cfg.Ranges[i].Lo, d.cfg.Ranges[i].Hi
		}
		out.Values[i] = lo + rng.Float64()*(hi-lo)
	}
	return out
}
