package network

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sensorguard/internal/sensor"
	"sensorguard/internal/vecmat"
)

// Property: for any random (possibly out-of-order) message stream, WindowAll
// (a) loses no reading, (b) places every reading inside its window's bounds,
// and (c) emits windows in strictly increasing index order with consistent
// bounds.
func TestWindowAllInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := time.Duration(1+rng.Intn(120)) * time.Minute
		n := rng.Intn(300)
		msgs := make([]sensor.Reading, n)
		for i := range msgs {
			msgs[i] = sensor.Reading{
				Sensor: rng.Intn(10),
				Time:   time.Duration(rng.Int63n(int64(48 * time.Hour))),
				Values: vecmat.Vector{rng.Float64()},
			}
		}
		windows, err := WindowAll(msgs, width)
		if err != nil {
			return false
		}
		total := 0
		prevIdx := -1 << 62
		for _, w := range windows {
			if w.Index <= prevIdx {
				return false // not strictly increasing
			}
			prevIdx = w.Index
			if w.End-w.Start != width {
				return false
			}
			if w.Start != time.Duration(w.Index)*width {
				return false
			}
			for _, r := range w.Readings {
				if r.Time < w.Start || r.Time >= w.End {
					return false
				}
			}
			total += len(w.Readings)
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the in-order Windower drops exactly the late messages and keeps
// everything else.
func TestWindowerConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		wd, err := NewWindower(time.Hour)
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(200)
		kept, late := 0, 0
		highWater := time.Duration(-1)
		var emitted int
		for i := 0; i < n; i++ {
			// Mostly increasing times with occasional regressions.
			tt := time.Duration(rng.Int63n(int64(24 * time.Hour)))
			r := sensor.Reading{Sensor: 0, Time: tt, Values: vecmat.Vector{1}}
			windowOfT := int(tt / time.Hour)
			windowHigh := int(highWater / time.Hour)
			if highWater >= 0 && windowOfT < windowHigh {
				late++
			} else {
				kept++
				if tt > highWater {
					highWater = tt
				}
			}
			for _, w := range wd.Add(r) {
				emitted += len(w.Readings)
			}
		}
		if last := wd.Flush(); last != nil {
			emitted += len(last.Readings)
		}
		return emitted == kept && wd.Late() == late
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
