package network

import (
	"errors"
	"time"

	"sensorguard/internal/obs"
	"sensorguard/internal/sensor"
)

// Window is one completed observation set O_i (Eq. 1): all messages whose
// timestamps fall in [w·(i-1), w·i).
type Window struct {
	// Index is the window ordinal i (0-based).
	Index int
	// Start and End bound the window.
	Start, End time.Duration
	// Readings are the delivered messages in arrival order.
	Readings []sensor.Reading
	// Trace carries the span context of a sampled reading admitted to this
	// window, linking the detector's stage spans back to the ingest trace.
	// The zero value (the common case) means no sampled reading landed
	// here and the detector records no spans for the window.
	Trace obs.SpanContext
}

// Windower partitions a time-ordered message stream into fixed-duration
// windows. Late (out-of-order across a window boundary) messages are dropped
// and counted, mirroring a collector that has already closed the window.
type Windower struct {
	width   time.Duration
	current int
	open    []sensor.Reading
	started bool
	late    int
}

// NewWindower builds a windower with the given window duration w.
func NewWindower(width time.Duration) (*Windower, error) {
	if width <= 0 {
		return nil, errors.New("network: window width must be positive")
	}
	return &Windower{width: width}, nil
}

// WindowIndex returns the ordinal of the window containing t for the given
// window duration.
func WindowIndex(t, width time.Duration) int {
	return int(t / width)
}

// BuildWindow assembles the Window with ordinal idx for the given window
// duration. It is the single place window bounds are derived from an index,
// shared by the in-order Windower here and the out-of-order-tolerant
// streaming windower in internal/ingest.
func BuildWindow(idx int, width time.Duration, readings []sensor.Reading) Window {
	return Window{
		Index:    idx,
		Start:    time.Duration(idx) * width,
		End:      time.Duration(idx+1) * width,
		Readings: readings,
	}
}

// Add folds one message in. When the message opens a later window, every
// window between the previously open one and the new one is emitted (in
// order, possibly empty) and returned.
func (w *Windower) Add(r sensor.Reading) []Window {
	idx := WindowIndex(r.Time, w.width)
	if !w.started {
		w.started = true
		w.current = idx
	}
	switch {
	case idx == w.current:
		w.open = append(w.open, r)
		return nil
	case idx < w.current:
		w.late++
		return nil
	}
	out := w.flushUpTo(idx)
	w.open = append(w.open, r)
	return out
}

// flushUpTo emits all windows from current up to (but excluding) idx and
// makes idx the open window.
func (w *Windower) flushUpTo(idx int) []Window {
	var out []Window
	out = append(out, w.makeWindow(w.current, w.open))
	for i := w.current + 1; i < idx; i++ {
		out = append(out, w.makeWindow(i, nil))
	}
	w.current = idx
	w.open = nil
	return out
}

func (w *Windower) makeWindow(idx int, readings []sensor.Reading) Window {
	return BuildWindow(idx, w.width, readings)
}

// Flush emits the currently open window, if any.
func (w *Windower) Flush() *Window {
	if !w.started {
		return nil
	}
	win := w.makeWindow(w.current, w.open)
	w.open = nil
	w.started = false
	return &win
}

// Late returns the number of messages dropped for arriving after their
// window closed.
func (w *Windower) Late() int { return w.late }

// WindowAll is a convenience that sorts a complete message trace and
// partitions it into windows, flushing the final partial window.
func WindowAll(readings []sensor.Reading, width time.Duration) ([]Window, error) {
	wd, err := NewWindower(width)
	if err != nil {
		return nil, err
	}
	sorted := make([]sensor.Reading, len(readings))
	copy(sorted, readings)
	SortReadings(sorted)
	var out []Window
	for _, r := range sorted {
		out = append(out, wd.Add(r)...)
	}
	if last := wd.Flush(); last != nil {
		out = append(out, *last)
	}
	return out, nil
}
