package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningMatchesBatch(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	if r.N() != len(xs) {
		t.Errorf("N = %d, want %d", r.N(), len(xs))
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	// Unbiased variance of this classic sample is 32/7.
	if want := 32.0 / 7.0; math.Abs(r.Variance()-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", r.Variance(), want)
	}
	if math.Abs(r.StdDev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("StdDev = %v", r.StdDev())
	}
}

func TestRunningEdgeCases(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.N() != 0 {
		t.Error("zero value Running must report zeros")
	}
	r.Add(42)
	if r.Variance() != 0 {
		t.Errorf("variance of single sample = %v, want 0", r.Variance())
	}
	r.Reset()
	if r.N() != 0 {
		t.Error("Reset did not clear count")
	}
}

// Property: Welford agrees with the two-pass textbook formula on random data.
func TestRunningAgainstTwoPassProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		var r Running
		var sum float64
		for _, x := range xs {
			r.Add(x)
			sum += x
		}
		mean := sum / float64(n)
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		wantVar := m2 / float64(n-1)
		return math.Abs(r.Mean()-mean) < 1e-9 && math.Abs(r.Variance()-wantVar) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRunningMerge(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3, 9, 4, 7}
	var whole, a, b Running
	for i, x := range xs {
		whole.Add(x)
		if i < 3 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Errorf("merged N = %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
		t.Errorf("merged mean = %v, want %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
		t.Errorf("merged variance = %v, want %v", a.Variance(), whole.Variance())
	}

	// Merging an empty accumulator is a no-op; merging into empty copies.
	var empty Running
	before := a
	a.Merge(empty)
	if a != before {
		t.Error("merge of empty changed accumulator")
	}
	empty.Merge(a)
	if math.Abs(empty.Mean()-a.Mean()) > 1e-12 || empty.N() != a.N() {
		t.Error("merge into empty did not copy")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Primed() {
		t.Error("fresh EWMA reports primed")
	}
	if got := e.Add(10); got != 10 {
		t.Errorf("first Add = %v, want 10 (seeding)", got)
	}
	if got := e.Add(0); math.Abs(got-5) > 1e-12 {
		t.Errorf("second Add = %v, want 5", got)
	}
	if math.Abs(e.Value()-5) > 1e-12 {
		t.Errorf("Value = %v, want 5", e.Value())
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.1)
	for i := 0; i < 500; i++ {
		e.Add(7)
	}
	if math.Abs(e.Value()-7) > 1e-9 {
		t.Errorf("EWMA of constant stream = %v, want 7", e.Value())
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || math.Abs(s.Mean-2) > 1e-12 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.Variance-1) > 1e-12 {
		t.Errorf("Variance = %v, want 1", s.Variance)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("Summarize(nil) = %+v, want zero", z)
	}
}
