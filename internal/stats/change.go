package stats

import (
	"errors"
	"math"
)

// The paper's Alarm Filtering module (§3.1) suggests filtering raw alarms
// either with a simple k-of-n rule or with sequential change-detection
// schemes — the Sequential Probability Ratio Test (SPRT) and the Cumulative
// Sum (CUSUM) procedure [Basseville & Nikiforov]. Both are implemented here
// over Bernoulli alarm streams: under H0 a healthy sensor raises a raw alarm
// with small probability p0 (boundary noise), under H1 a faulty/malicious
// sensor raises alarms with much larger probability p1.

// Decision is the outcome of a sequential test step.
type Decision int

// Sequential test outcomes.
const (
	// Continue means the test has not accumulated enough evidence.
	Continue Decision = iota + 1
	// AcceptH0 means the stream is consistent with healthy behaviour.
	AcceptH0
	// AcceptH1 means a change (fault/attack) has been detected.
	AcceptH1
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case Continue:
		return "continue"
	case AcceptH0:
		return "accept-h0"
	case AcceptH1:
		return "accept-h1"
	default:
		return "unknown"
	}
}

// SPRT is Wald's sequential probability ratio test for a Bernoulli stream.
// It accumulates the log-likelihood ratio of H1 (alarm probability p1) over
// H0 (alarm probability p0) and stops when it crosses the boundaries implied
// by the desired error rates.
type SPRT struct {
	llr        float64
	lowerBound float64
	upperBound float64
	llr1, llr0 float64 // per-observation increments for alarm / no-alarm
}

// NewSPRT builds a Bernoulli SPRT. p0 < p1 are the alarm probabilities under
// H0 and H1; alpha and beta are the acceptable false-positive and
// false-negative rates.
func NewSPRT(p0, p1, alpha, beta float64) (*SPRT, error) {
	switch {
	case p0 <= 0 || p1 >= 1 || p0 >= p1:
		return nil, errors.New("stats: SPRT needs 0 < p0 < p1 < 1")
	case alpha <= 0 || alpha >= 1 || beta <= 0 || beta >= 1:
		return nil, errors.New("stats: SPRT needs error rates in (0,1)")
	}
	return &SPRT{
		lowerBound: math.Log(beta / (1 - alpha)),
		upperBound: math.Log((1 - beta) / alpha),
		llr1:       math.Log(p1 / p0),
		llr0:       math.Log((1 - p1) / (1 - p0)),
	}, nil
}

// Observe folds in one Bernoulli observation (true = raw alarm) and returns
// the test decision. After AcceptH0 or AcceptH1 the test restarts from zero
// evidence, so it can be used continuously on a stream.
func (s *SPRT) Observe(alarm bool) Decision {
	if alarm {
		s.llr += s.llr1
	} else {
		s.llr += s.llr0
	}
	switch {
	case s.llr >= s.upperBound:
		s.llr = 0
		return AcceptH1
	case s.llr <= s.lowerBound:
		s.llr = 0
		return AcceptH0
	default:
		return Continue
	}
}

// Evidence returns the current log-likelihood ratio.
func (s *SPRT) Evidence() float64 { return s.llr }

// Reset clears accumulated evidence.
func (s *SPRT) Reset() { s.llr = 0 }

// SetEvidence overwrites the accumulated log-likelihood ratio — the restore
// half of Evidence, used when reloading filter state from a checkpoint.
func (s *SPRT) SetEvidence(llr float64) { s.llr = llr }

// CUSUM is a one-sided cumulative-sum detector on a Bernoulli alarm stream:
// g ← max(0, g + z), where z is the log-likelihood-ratio increment of the
// observation, and a change is declared when g exceeds threshold h.
type CUSUM struct {
	g          float64
	h          float64
	llr1, llr0 float64
}

// NewCUSUM builds a Bernoulli CUSUM with pre/post-change alarm probabilities
// p0 < p1 and decision threshold h > 0.
func NewCUSUM(p0, p1, h float64) (*CUSUM, error) {
	if p0 <= 0 || p1 >= 1 || p0 >= p1 {
		return nil, errors.New("stats: CUSUM needs 0 < p0 < p1 < 1")
	}
	if h <= 0 {
		return nil, errors.New("stats: CUSUM needs threshold h > 0")
	}
	return &CUSUM{
		h:    h,
		llr1: math.Log(p1 / p0),
		llr0: math.Log((1 - p1) / (1 - p0)),
	}, nil
}

// Observe folds in one observation and reports whether the cumulative
// statistic crossed the threshold. On detection the statistic resets.
func (c *CUSUM) Observe(alarm bool) bool {
	z := c.llr0
	if alarm {
		z = c.llr1
	}
	c.g = math.Max(0, c.g+z)
	if c.g >= c.h {
		c.g = 0
		return true
	}
	return false
}

// Statistic returns the current cumulative statistic g.
func (c *CUSUM) Statistic() float64 { return c.g }

// Reset clears the cumulative statistic.
func (c *CUSUM) Reset() { c.g = 0 }

// SetStatistic overwrites the cumulative statistic — the restore half of
// Statistic, used when reloading filter state from a checkpoint.
func (c *CUSUM) SetStatistic(g float64) { c.g = g }
