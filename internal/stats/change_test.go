package stats

import (
	"math/rand"
	"testing"
)

func TestNewSPRTValidation(t *testing.T) {
	cases := []struct {
		name                string
		p0, p1, alpha, beta float64
	}{
		{"p0 zero", 0, 0.5, 0.01, 0.01},
		{"p0 >= p1", 0.5, 0.5, 0.01, 0.01},
		{"p1 one", 0.1, 1, 0.01, 0.01},
		{"alpha zero", 0.1, 0.5, 0, 0.01},
		{"beta one", 0.1, 0.5, 0.01, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewSPRT(tc.p0, tc.p1, tc.alpha, tc.beta); err == nil {
				t.Error("invalid SPRT parameters accepted")
			}
		})
	}
	if _, err := NewSPRT(0.02, 0.5, 0.01, 0.01); err != nil {
		t.Errorf("valid parameters rejected: %v", err)
	}
}

func TestSPRTDetectsPersistentAlarms(t *testing.T) {
	s, err := NewSPRT(0.02, 0.6, 0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	var dec Decision
	steps := 0
	for dec != AcceptH1 && steps < 100 {
		dec = s.Observe(true)
		steps++
	}
	if dec != AcceptH1 {
		t.Fatalf("SPRT never accepted H1 on a solid alarm stream")
	}
	if steps > 10 {
		t.Errorf("SPRT took %d steps to flag a solid alarm stream", steps)
	}
	if s.Evidence() != 0 {
		t.Errorf("evidence after decision = %v, want reset to 0", s.Evidence())
	}
}

func TestSPRTAcceptsHealthyStream(t *testing.T) {
	s, err := NewSPRT(0.02, 0.6, 0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	var dec Decision
	for i := 0; i < 100 && dec != AcceptH0; i++ {
		dec = s.Observe(false)
	}
	if dec != AcceptH0 {
		t.Error("SPRT never accepted H0 on an alarm-free stream")
	}
}

func TestSPRTFalseAlarmRate(t *testing.T) {
	// Healthy stream with p0-rate noise: H1 acceptances should be rare.
	s, err := NewSPRT(0.02, 0.6, 0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	h1 := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.Observe(rng.Float64() < 0.02) == AcceptH1 {
			h1++
		}
	}
	// With alpha=0.01 per test and repeated restarts, H1 acceptances must
	// remain a small fraction of the restarts (~n/expected-run-length).
	if h1 > 25 {
		t.Errorf("too many false H1 acceptances: %d in %d steps", h1, n)
	}
}

func TestDecisionString(t *testing.T) {
	if Continue.String() != "continue" || AcceptH0.String() != "accept-h0" || AcceptH1.String() != "accept-h1" {
		t.Error("Decision.String mismatch")
	}
	if Decision(0).String() != "unknown" {
		t.Error("zero Decision should stringify to unknown")
	}
}

func TestNewCUSUMValidation(t *testing.T) {
	if _, err := NewCUSUM(0.5, 0.5, 3); err == nil {
		t.Error("p0 >= p1 accepted")
	}
	if _, err := NewCUSUM(0.1, 0.5, 0); err == nil {
		t.Error("non-positive threshold accepted")
	}
	if _, err := NewCUSUM(0.02, 0.6, 4); err != nil {
		t.Errorf("valid parameters rejected: %v", err)
	}
}

func TestCUSUMDetectsChange(t *testing.T) {
	c, err := NewCUSUM(0.02, 0.6, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	// Pre-change: healthy noise must trip the detector only rarely.
	trips := 0
	for i := 0; i < 2000; i++ {
		if c.Observe(rng.Float64() < 0.02) {
			trips++
		}
	}
	if trips > 2 {
		t.Fatalf("CUSUM tripped %d times on healthy noise", trips)
	}
	c.Reset()
	// Post-change: persistent alarms must trip quickly.
	tripped := -1
	for i := 0; i < 50; i++ {
		if c.Observe(true) {
			tripped = i
			break
		}
	}
	if tripped < 0 {
		t.Fatal("CUSUM never tripped after the change")
	}
	if tripped > 10 {
		t.Errorf("CUSUM detection delay = %d steps, want quick detection", tripped)
	}
	if c.Statistic() != 0 {
		t.Errorf("statistic after detection = %v, want 0", c.Statistic())
	}
}

func TestCUSUMStatisticNonNegativeProperty(t *testing.T) {
	c, err := NewCUSUM(0.05, 0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		c.Observe(rng.Float64() < 0.3)
		if c.Statistic() < 0 {
			t.Fatalf("statistic went negative at step %d: %v", i, c.Statistic())
		}
	}
}

func TestCUSUMReset(t *testing.T) {
	c, _ := NewCUSUM(0.02, 0.6, 100)
	for i := 0; i < 5; i++ {
		c.Observe(true)
	}
	if c.Statistic() == 0 {
		t.Fatal("statistic did not accumulate")
	}
	c.Reset()
	if c.Statistic() != 0 {
		t.Error("Reset did not clear statistic")
	}
}
