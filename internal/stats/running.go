// Package stats provides the streaming statistics and sequential
// change-detection procedures the detector relies on: running moments
// (Welford), exponentially-weighted averages, and the SPRT and CUSUM
// procedures the paper's Alarm Filtering module cites (§3.1, [9]).
package stats

import "math"

// Running accumulates count, mean, and variance of a stream using Welford's
// numerically stable one-pass algorithm. The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations seen.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 before any observation).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Reset clears the accumulator.
func (r *Running) Reset() { *r = Running{} }

// RunningState is the serializable form of a Running accumulator: the exact
// Welford triple, so Export/Restore round-trips are bit-identical and a
// restored accumulator continues the stream indistinguishably.
type RunningState struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// Export returns the accumulator's serializable state.
func (r Running) Export() RunningState {
	return RunningState{N: r.n, Mean: r.mean, M2: r.m2}
}

// Restore rebuilds a Running accumulator from exported state.
func (s RunningState) Restore() Running {
	return Running{n: s.N, mean: s.Mean, m2: s.M2}
}

// Merge folds another accumulator into r using Chan's parallel-variance
// formula, as if every observation of other had been Added to r.
func (r *Running) Merge(other Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = other
		return
	}
	na, nb := float64(r.n), float64(other.n)
	delta := other.mean - r.mean
	total := na + nb
	r.mean += delta * nb / total
	r.m2 += other.m2 + delta*delta*na*nb/total
	r.n += other.n
}

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0,1]: v ← (1-α)·v + α·x, the same update shape the paper uses
// for model states (Eq. 6) and HMM rows (§3.2).
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA returns an EWMA with the given smoothing factor. The first Add
// seeds the value directly.
func NewEWMA(alpha float64) *EWMA {
	return &EWMA{alpha: alpha}
}

// Add folds one observation in and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.primed {
		e.value, e.primed = x, true
		return x
	}
	e.value = (1-e.alpha)*e.value + e.alpha*x
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Primed reports whether at least one observation has been folded in.
func (e *EWMA) Primed() bool { return e.primed }

// Summary holds batch statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64
	Min      float64
	Max      float64
}

// Summarize computes batch statistics over xs. A zero Summary is returned
// for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	var r Running
	s := Summary{Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		r.Add(x)
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.N, s.Mean, s.Variance = r.N(), r.Mean(), r.Variance()
	return s
}
