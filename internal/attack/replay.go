package attack

import (
	"time"

	"sensorguard/internal/sensor"
)

// Replay is a beyond-paper attack probe: compromised sensors replay their
// own earlier (clean) readings with a fixed delay. Every replayed value is
// individually plausible — it is a real environmental reading — but the
// temporal alignment with the rest of the network is broken: at night the
// malicious sensors report yesterday afternoon, and so on.
//
// Against the paper's methodology this behaves like a coordinated
// displacement of the observable mean whose direction changes with the
// phase of the environment cycle; the exploratory scenario test records how
// the structural classifier reads it.
type Replay struct {
	Adversary *Adversary
	// Delay is how stale the replayed readings are.
	Delay time.Duration
	// Start and End bound the attack window (End 0 = open-ended).
	Start, End time.Duration

	// buffer holds, per controlled sensor, its past clean readings keyed
	// by sample time. Entries older than Delay plus one sample period
	// are pruned lazily.
	buffer map[int][]sensor.Reading
}

var _ Strategy = (*Replay)(nil)

// Name implements Strategy.
func (*Replay) Name() string { return "replay" }

// Apply implements Strategy. It always records the controlled sensors'
// clean readings (the adversary taps them continuously) and, inside the
// active window, substitutes the reading from Delay ago when one exists.
func (r *Replay) Apply(t time.Duration, readings []sensor.Reading) []sensor.Reading {
	if r.buffer == nil {
		r.buffer = make(map[int][]sensor.Reading)
	}
	out := cloneRound(readings)
	for i := range out {
		id := out[i].Sensor
		if !r.Adversary.Controls(id) {
			continue
		}
		// Record the clean reading before any substitution.
		r.buffer[id] = append(r.buffer[id], out[i].Clone())
		r.prune(id, t)
		if !window(t, r.Start, r.End) {
			continue
		}
		if old, ok := r.lookup(id, t-r.Delay); ok {
			out[i].Values = old.Values.Clone()
		}
	}
	return out
}

// lookup returns the buffered reading nearest to the wanted time, if any
// buffered reading is within a quarter of the delay of it.
func (r *Replay) lookup(id int, want time.Duration) (sensor.Reading, bool) {
	buf := r.buffer[id]
	bestIdx := -1
	var bestDist time.Duration
	for i := range buf {
		d := buf[i].Time - want
		if d < 0 {
			d = -d
		}
		if bestIdx < 0 || d < bestDist {
			bestIdx, bestDist = i, d
		}
	}
	if bestIdx < 0 || bestDist > r.Delay/4 {
		return sensor.Reading{}, false
	}
	return buf[bestIdx], true
}

// prune drops buffered readings too old to ever be replayed again.
func (r *Replay) prune(id int, now time.Duration) {
	cutoff := now - r.Delay - time.Hour
	buf := r.buffer[id]
	kept := buf[:0]
	for _, b := range buf {
		if b.Time >= cutoff {
			kept = append(kept, b)
		}
	}
	r.buffer[id] = kept
}
