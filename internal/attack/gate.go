package attack

import (
	"errors"
	"time"

	"sensorguard/internal/sensor"
)

// Gated activates an inner strategy only when Active returns true for the
// round's timestamp; outside that, readings pass through untouched. It
// composes with the inner strategy's own Start/End window.
type Gated struct {
	Inner  Strategy
	Active func(t time.Duration) bool
}

var _ Strategy = (*Gated)(nil)

// Name implements Strategy.
func (g *Gated) Name() string { return g.Inner.Name() }

// Apply implements Strategy.
func (g *Gated) Apply(t time.Duration, readings []sensor.Reading) []sensor.Reading {
	if g.Active == nil || !g.Active(t) {
		return cloneRound(readings)
	}
	return g.Inner.Apply(t, readings)
}

// PeriodicGate returns an activation predicate that is true during
// [offset, offset+duration) of every period — e.g. "nightly between 00:00
// and 03:30" with period = 24h. An adversary that strikes only part of a
// recurring environment dwell is what produces the paper's split-row
// Dynamic-Creation signature (Table 7), as opposed to wholesale state
// substitution.
func PeriodicGate(period, offset, duration time.Duration) (func(time.Duration) bool, error) {
	if period <= 0 {
		return nil, errors.New("attack: gate period must be positive")
	}
	if offset < 0 || offset >= period {
		return nil, errors.New("attack: gate offset outside period")
	}
	if duration <= 0 || duration > period {
		return nil, errors.New("attack: gate duration outside (0, period]")
	}
	return func(t time.Duration) bool {
		phase := t % period
		if phase < 0 {
			phase += period
		}
		end := offset + duration
		if end <= period {
			return phase >= offset && phase < end
		}
		return phase >= offset || phase < end-period
	}, nil
}
