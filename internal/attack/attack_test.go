package attack

import (
	"math"
	"testing"
	"time"

	"sensorguard/internal/sensor"
	"sensorguard/internal/vecmat"
)

// round builds one sampling round: sensors 0..n-1 all reading values.
func round(n int, values vecmat.Vector) []sensor.Reading {
	out := make([]sensor.Reading, n)
	for i := range out {
		out[i] = sensor.Reading{Sensor: i, Time: 0, Values: values.Clone()}
	}
	return out
}

func mean(readings []sensor.Reading) vecmat.Vector {
	sum := vecmat.NewVector(len(readings[0].Values))
	for _, r := range readings {
		_ = sum.AddInPlace(r.Values)
	}
	return sum.Scale(1 / float64(len(readings)))
}

func mustAdversary(t *testing.T, malicious []int) *Adversary {
	t.Helper()
	a, err := NewAdversary(malicious, []sensor.Range{{Lo: -40, Hi: 60}, {Lo: 0, Hi: 100}})
	if err != nil {
		t.Fatalf("NewAdversary: %v", err)
	}
	return a
}

func TestNewAdversaryValidation(t *testing.T) {
	if _, err := NewAdversary(nil, nil); err == nil {
		t.Error("empty malicious set accepted")
	}
	if _, err := NewAdversary([]int{1, 1}, nil); err == nil {
		t.Error("duplicate malicious sensor accepted")
	}
	a := mustAdversary(t, []int{2, 5})
	if !a.Controls(2) || a.Controls(3) {
		t.Error("Controls misreports")
	}
	if a.Malicious() != 2 {
		t.Errorf("Malicious = %d, want 2", a.Malicious())
	}
}

func TestDynamicCreationMovesMeanToTarget(t *testing.T) {
	// 9 sensors, 3 malicious (one third, as in §4.2). Correct env at
	// (17,86); the adversary creates observable state (25,69).
	a := mustAdversary(t, []int{0, 1, 2})
	atk := &DynamicCreation{Adversary: a, Target: vecmat.Vector{25, 69}}
	in := round(9, vecmat.Vector{17, 86})
	out := atk.Apply(time.Hour, in)

	m := mean(out)
	if math.Abs(m[0]-25) > 1e-9 || math.Abs(m[1]-69) > 1e-9 {
		t.Errorf("attacked mean = %v, want (25,69)", m)
	}
	// Correct sensors untouched.
	for _, r := range out[3:] {
		if !r.Values.Equal(vecmat.Vector{17, 86}, 0) {
			t.Errorf("correct sensor %d modified: %v", r.Sensor, r.Values)
		}
	}
	// Malicious injections stay inside admissible ranges.
	for _, r := range out[:3] {
		if r.Values[1] < 0 || r.Values[1] > 100 {
			t.Errorf("injected humidity %v outside range", r.Values[1])
		}
	}
	// Input round untouched (no aliasing).
	if !in[0].Values.Equal(vecmat.Vector{17, 86}, 0) {
		t.Error("input readings mutated")
	}
}

func TestDynamicCreationInactiveOutsideWindow(t *testing.T) {
	a := mustAdversary(t, []int{0})
	atk := &DynamicCreation{Adversary: a, Target: vecmat.Vector{50, 50}, Start: time.Hour, End: 2 * time.Hour}
	in := round(3, vecmat.Vector{10, 90})
	for _, tt := range []time.Duration{0, 2 * time.Hour, 3 * time.Hour} {
		out := atk.Apply(tt, in)
		if !mean(out).Equal(vecmat.Vector{10, 90}, 1e-9) {
			t.Errorf("attack active outside window at %v", tt)
		}
	}
	out := atk.Apply(90*time.Minute, in)
	if mean(out).Equal(vecmat.Vector{10, 90}, 1e-9) {
		t.Error("attack inactive inside window")
	}
}

func TestDynamicCreationClampsInjection(t *testing.T) {
	// Forcing the mean far beyond what in-range injections can achieve:
	// with 1 of 3 sensors malicious and humidity capped at 100, the
	// target mean 99 from a correct 95 requires injecting 107 → clamped.
	a := mustAdversary(t, []int{0})
	atk := &DynamicCreation{Adversary: a, Target: vecmat.Vector{12, 99}}
	out := atk.Apply(0, round(3, vecmat.Vector{12, 95}))
	if out[0].Values[1] != 100 {
		t.Errorf("injected humidity = %v, want clamped 100", out[0].Values[1])
	}
	m := mean(out)
	if m[1] > 99 {
		t.Errorf("achieved mean %v exceeds the feasible maximum", m[1])
	}
}

func TestDynamicDeletionPinsMean(t *testing.T) {
	a := mustAdversary(t, []int{0, 1, 2})
	atk := &DynamicDeletion{
		Adversary:   a,
		Target:      vecmat.Vector{29, 56},
		ReplaceWith: vecmat.Vector{20, 70},
		Radius:      5,
	}
	// Environment in the target state: attack pins the mean elsewhere.
	out := atk.Apply(0, round(9, vecmat.Vector{29, 56}))
	m := mean(out)
	if math.Abs(m[0]-20) > 1e-9 || math.Abs(m[1]-70) > 1e-9 {
		t.Errorf("deleted-state mean = %v, want (20,70)", m)
	}
	// Environment elsewhere: adversary stays quiet.
	out = atk.Apply(0, round(9, vecmat.Vector{12, 94}))
	if !mean(out).Equal(vecmat.Vector{12, 94}, 1e-9) {
		t.Errorf("adversary acted outside target state: %v", mean(out))
	}
}

func TestDynamicChangeDisplacesEveryState(t *testing.T) {
	a := mustAdversary(t, []int{0, 1, 2})
	atk := &DynamicChange{Adversary: a, Offset: vecmat.Vector{-10, 5}}
	for _, base := range []vecmat.Vector{{29, 56}, {17, 84}} {
		out := atk.Apply(0, round(9, base))
		m := mean(out)
		want, _ := base.Add(vecmat.Vector{-10, 5})
		if !m.Equal(want, 1e-9) {
			t.Errorf("changed mean for %v = %v, want %v", base, m, want)
		}
	}
}

func TestMixedAppliesAllComponents(t *testing.T) {
	a := mustAdversary(t, []int{0, 1, 2})
	atk := &Mixed{Strategies: []Strategy{
		&DynamicDeletion{Adversary: a, Target: vecmat.Vector{29, 56}, ReplaceWith: vecmat.Vector{20, 70}, Radius: 5},
		&DynamicCreation{Adversary: a, Target: vecmat.Vector{5, 95}, Start: 10 * time.Hour},
	}}
	// Early on only the deletion component is active.
	out := atk.Apply(0, round(9, vecmat.Vector{29, 56}))
	if !mean(out).Equal(vecmat.Vector{20, 70}, 1e-9) {
		t.Errorf("deletion component inactive in mixed attack: %v", mean(out))
	}
	// Later the creation component overrides.
	out = atk.Apply(11*time.Hour, round(9, vecmat.Vector{12, 94}))
	if !mean(out).Equal(vecmat.Vector{5, 95}, 1e-9) {
		t.Errorf("creation component inactive in mixed attack: %v", mean(out))
	}
	if atk.Name() != "mixed" {
		t.Errorf("Name = %q", atk.Name())
	}
}

func TestBenignChangesNothing(t *testing.T) {
	in := round(4, vecmat.Vector{1, 2})
	out := Benign{}.Apply(0, in)
	for i := range in {
		if !out[i].Values.Equal(in[i].Values, 0) {
			t.Error("benign attack modified readings")
		}
	}
	out[0].Values[0] = 99
	if in[0].Values[0] != 1 {
		t.Error("benign output aliases input")
	}
}

func TestCompensateWithAllSensorsMalicious(t *testing.T) {
	// No correct sensors: deletion and change need the correct mean and
	// must degrade to a no-op rather than panic.
	a := mustAdversary(t, []int{0, 1})
	del := &DynamicDeletion{Adversary: a, Target: vecmat.Vector{1, 1}, ReplaceWith: vecmat.Vector{2, 2}, Radius: 100}
	in := round(2, vecmat.Vector{1, 1})
	out := del.Apply(0, in)
	if !mean(out).Equal(vecmat.Vector{1, 1}, 1e-9) {
		t.Errorf("deletion without correct sensors acted: %v", mean(out))
	}
	chg := &DynamicChange{Adversary: a, Offset: vecmat.Vector{5, 5}}
	out = chg.Apply(0, in)
	if !mean(out).Equal(vecmat.Vector{1, 1}, 1e-9) {
		t.Errorf("change without correct sensors acted: %v", mean(out))
	}
	// Creation can still act (it does not need the correct mean), driving
	// both malicious sensors to the target directly.
	crt := &DynamicCreation{Adversary: a, Target: vecmat.Vector{30, 40}}
	out = crt.Apply(0, in)
	if !mean(out).Equal(vecmat.Vector{30, 40}, 1e-9) {
		t.Errorf("creation with all-malicious round = %v, want (30,40)", mean(out))
	}
}

func TestStrategyNames(t *testing.T) {
	a := mustAdversary(t, []int{0})
	if (&DynamicCreation{Adversary: a}).Name() != "dynamic-creation" {
		t.Error("creation name")
	}
	if (&DynamicDeletion{Adversary: a}).Name() != "dynamic-deletion" {
		t.Error("deletion name")
	}
	if (&DynamicChange{Adversary: a}).Name() != "dynamic-change" {
		t.Error("change name")
	}
	if (Benign{}).Name() != "benign" {
		t.Error("benign name")
	}
}

func TestJitterIsDeterministicUnderReseed(t *testing.T) {
	apply := func(seed int64) []sensor.Reading {
		a := mustAdversary(t, []int{0, 1})
		a.Reseed(seed)
		if err := a.SetJitter(0.5); err != nil {
			t.Fatalf("SetJitter: %v", err)
		}
		crt := &DynamicCreation{Adversary: a, Target: vecmat.Vector{30, 40}}
		out := crt.Apply(0, round(5, vecmat.Vector{20, 50}))
		return crt.Apply(time.Minute, out)
	}
	a, b := apply(7), apply(7)
	for i := range a {
		if !a[i].Values.Equal(b[i].Values, 0) {
			t.Fatalf("same seed diverged at sensor %d: %v vs %v", i, a[i].Values, b[i].Values)
		}
	}
	c := apply(8)
	same := true
	for i := range a {
		if !a[i].Values.Equal(c[i].Values, 0) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter")
	}
}

func TestJitterSpreadsInjectionsAcrossSensors(t *testing.T) {
	a := mustAdversary(t, []int{0, 1, 2})
	a.Reseed(3)
	if err := a.SetJitter(0.5); err != nil {
		t.Fatal(err)
	}
	crt := &DynamicCreation{Adversary: a, Target: vecmat.Vector{30, 40}}
	out := crt.Apply(0, round(6, vecmat.Vector{20, 50}))
	if out[0].Values.Equal(out[1].Values, 0) && out[1].Values.Equal(out[2].Values, 0) {
		t.Error("jittered injections are identical across controlled sensors")
	}
	// Jitter must still respect the admissible ranges.
	for _, r := range out[:3] {
		if r.Values[1] < 0 || r.Values[1] > 100 {
			t.Errorf("jittered humidity %v outside [0,100]", r.Values[1])
		}
	}
	if err := a.SetJitter(-1); err == nil {
		t.Error("negative sigma accepted")
	}
}

func TestZeroJitterKeepsExactCompensation(t *testing.T) {
	a := mustAdversary(t, []int{0})
	a.Reseed(9)
	crt := &DynamicCreation{Adversary: a, Target: vecmat.Vector{30, 40}}
	out := crt.Apply(0, round(4, vecmat.Vector{20, 50}))
	if !mean(out).Equal(vecmat.Vector{30, 40}, 1e-9) {
		t.Errorf("mean with zero jitter = %v, want exact target", mean(out))
	}
}
