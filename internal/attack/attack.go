// Package attack implements the paper's sensor attack model (§3.3): an
// adversary who has captured and reprogrammed a subset of the sensor nodes
// and injects malicious data to disrupt or control the environmental
// sensing of the network.
//
// Unlike accidental faults, the adversary is an intelligent entity: it
// observes the readings of the *correct* sensors in every round and solves
// for the injection that moves (Dynamic Creation), pins (Dynamic Deletion),
// or displaces (Dynamic Change) the network-level mean — while keeping every
// injected value inside the admissible attribute ranges, since out-of-range
// values would be trivially caught by range checking (§4.2).
package attack

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"sensorguard/internal/sensor"
	"sensorguard/internal/vecmat"
)

// Strategy rewrites the readings of malicious sensors given the full view of
// one sampling round. Implementations must not mutate the input slice or its
// readings.
type Strategy interface {
	// Name identifies the attack type for reports.
	Name() string
	// Apply returns the round's readings with malicious sensors' values
	// replaced. Readings of correct sensors pass through unchanged.
	Apply(t time.Duration, readings []sensor.Reading) []sensor.Reading
}

// Adversary is the shared attacker state: which sensors it controls and the
// admissible ranges it must respect.
//
// Every random choice an adversary makes is drawn from one seeded RNG
// (Reseed), so a campaign replayed with the same seed over the same trace is
// byte-reproducible — the property the scenario corpus scores against
// committed ground truth.
type Adversary struct {
	malicious map[int]bool
	ranges    []sensor.Range
	jitter    float64
	rng       *rand.Rand
}

// NewAdversary builds an adversary controlling the given sensors. ranges
// bound the injected values per attribute (nil disables clamping).
func NewAdversary(malicious []int, ranges []sensor.Range) (*Adversary, error) {
	if len(malicious) == 0 {
		return nil, errors.New("attack: adversary controls no sensors")
	}
	m := make(map[int]bool, len(malicious))
	for _, id := range malicious {
		if m[id] {
			return nil, fmt.Errorf("attack: duplicate malicious sensor %d", id)
		}
		m[id] = true
	}
	return &Adversary{malicious: m, ranges: append([]sensor.Range(nil), ranges...)}, nil
}

// Reseed installs a deterministic RNG for every stochastic choice the
// adversary makes (currently injection jitter). Strategies sharing one
// Adversary share its stream, so the bytes an attacked trace contains are a
// pure function of (trace, seed, strategy schedule). Calling Reseed mid-run
// restarts the stream.
func (a *Adversary) Reseed(seed int64) {
	a.rng = rand.New(rand.NewSource(seed))
}

// SetJitter makes compensate spread its injections: instead of every
// controlled sensor reporting the identical solved value — a fingerprint no
// real attacker would leave — each gets zero-mean Gaussian noise with the
// given per-attribute standard deviation added, drawn from the Reseed RNG.
// The jitter is zero-mean, so the achieved network mean stays on target in
// expectation; sigma 0 restores exact compensation.
func (a *Adversary) SetJitter(sigma float64) error {
	if sigma < 0 {
		return fmt.Errorf("attack: negative jitter sigma %v", sigma)
	}
	a.jitter = sigma
	return nil
}

// rand returns the adversary's RNG, defaulting to a fixed seed so an
// un-Reseeded adversary is still deterministic rather than time-seeded.
func (a *Adversary) rand() *rand.Rand {
	if a.rng == nil {
		a.rng = rand.New(rand.NewSource(1))
	}
	return a.rng
}

// Controls reports whether the adversary controls the sensor.
func (a *Adversary) Controls(id int) bool { return a.malicious[id] }

// Malicious returns the number of controlled sensors.
func (a *Adversary) Malicious() int { return len(a.malicious) }

// correctMean returns the mean of readings from sensors the adversary does
// not control, or false when there are none.
func (a *Adversary) correctMean(readings []sensor.Reading) (vecmat.Vector, bool) {
	var sum vecmat.Vector
	n := 0
	for _, r := range readings {
		if a.malicious[r.Sensor] {
			continue
		}
		if sum == nil {
			sum = vecmat.NewVector(len(r.Values))
		}
		if err := sum.AddInPlace(r.Values); err != nil {
			return nil, false
		}
		n++
	}
	if n == 0 {
		return nil, false
	}
	return sum.Scale(1 / float64(n)), true
}

// compensate returns the round with every controlled sensor reporting the
// value that drives the mean over all sensors to target:
//
//	v = (N·target − Σ_correct p_j) / N_malicious
//
// clamped to the admissible ranges. With clamping active the achieved mean
// may fall short of the target — the paper accepts the same limitation
// (Fig. 10: humidity cannot be pinned exactly without exceeding 100%).
func (a *Adversary) compensate(readings []sensor.Reading, target vecmat.Vector) []sensor.Reading {
	var correctSum vecmat.Vector
	present := 0
	nMal := 0
	for _, r := range readings {
		if correctSum == nil {
			correctSum = vecmat.NewVector(len(r.Values))
		}
		if a.malicious[r.Sensor] {
			nMal++
			continue
		}
		if err := correctSum.AddInPlace(r.Values); err != nil {
			return cloneRound(readings)
		}
		present++
	}
	out := cloneRound(readings)
	if nMal == 0 || correctSum == nil {
		return out
	}
	total := present + nMal
	inject := make(vecmat.Vector, len(target))
	for i := range target {
		if i < len(correctSum) {
			inject[i] = (float64(total)*target[i] - correctSum[i]) / float64(nMal)
		}
	}
	inject = sensor.ClampVector(inject, a.ranges)
	for i := range out {
		if a.malicious[out[i].Sensor] {
			v := inject.Clone()
			if a.jitter > 0 {
				rng := a.rand()
				for j := range v {
					v[j] += rng.NormFloat64() * a.jitter
				}
				v = sensor.ClampVector(v, a.ranges)
			}
			out[i].Values = v
		}
	}
	return out
}

func cloneRound(readings []sensor.Reading) []sensor.Reading {
	out := make([]sensor.Reading, len(readings))
	for i, r := range readings {
		out[i] = r.Clone()
	}
	return out
}

// window reports whether t falls inside [start, end), with end == 0 meaning
// open-ended.
func window(t, start, end time.Duration) bool {
	if t < start {
		return false
	}
	return end == 0 || t < end
}

// DynamicCreation introduces a spurious state: during its active window the
// adversary drives the network mean to Target although the true environment
// has not moved (§3.3: "the overall temperature measured by the network
// moves from the valid readings").
type DynamicCreation struct {
	Adversary *Adversary
	// Target is the fake observable state the adversary creates.
	Target vecmat.Vector
	// Start and End bound the attack window (End 0 = open-ended).
	Start, End time.Duration
}

var _ Strategy = (*DynamicCreation)(nil)

// Name implements Strategy.
func (*DynamicCreation) Name() string { return "dynamic-creation" }

// Apply implements Strategy.
func (d *DynamicCreation) Apply(t time.Duration, readings []sensor.Reading) []sensor.Reading {
	if !window(t, d.Start, d.End) {
		return cloneRound(readings)
	}
	return d.Adversary.compensate(readings, d.Target)
}

// DynamicDeletion removes a valid state: whenever the correct sensors are
// about to report Target, the adversary injects compensating values that
// keep the network mean at ReplaceWith (§3.3: "the overall temperature
// measured by the network does not change").
type DynamicDeletion struct {
	Adversary *Adversary
	// Target is the environment state the adversary hides.
	Target vecmat.Vector
	// ReplaceWith is the state the network keeps observing instead.
	ReplaceWith vecmat.Vector
	// Radius triggers the attack when the correct mean is within this
	// distance of Target.
	Radius float64
	// Start and End bound the attack window (End 0 = open-ended).
	Start, End time.Duration
}

var _ Strategy = (*DynamicDeletion)(nil)

// Name implements Strategy.
func (*DynamicDeletion) Name() string { return "dynamic-deletion" }

// Apply implements Strategy.
func (d *DynamicDeletion) Apply(t time.Duration, readings []sensor.Reading) []sensor.Reading {
	if !window(t, d.Start, d.End) {
		return cloneRound(readings)
	}
	mean, ok := d.Adversary.correctMean(readings)
	if !ok {
		return cloneRound(readings)
	}
	dist, err := mean.Distance(d.Target)
	if err != nil || dist > d.Radius {
		return cloneRound(readings)
	}
	return d.Adversary.compensate(readings, d.ReplaceWith)
}

// DynamicChange displaces every state: the adversary shifts the network
// mean by a fixed offset, so each correct state maps one-to-one onto a
// different observable state without altering the temporal behaviour (§3.3:
// each time correct sensors report 50 the network reports 10).
type DynamicChange struct {
	Adversary *Adversary
	// Offset is added to the correct mean to obtain the displayed state.
	Offset vecmat.Vector
	// Start and End bound the attack window (End 0 = open-ended).
	Start, End time.Duration
}

var _ Strategy = (*DynamicChange)(nil)

// Name implements Strategy.
func (*DynamicChange) Name() string { return "dynamic-change" }

// Apply implements Strategy.
func (d *DynamicChange) Apply(t time.Duration, readings []sensor.Reading) []sensor.Reading {
	if !window(t, d.Start, d.End) {
		return cloneRound(readings)
	}
	mean, ok := d.Adversary.correctMean(readings)
	if !ok {
		return cloneRound(readings)
	}
	target, err := mean.Add(d.Offset)
	if err != nil {
		return cloneRound(readings)
	}
	return d.Adversary.compensate(readings, target)
}

// Mixed mounts a combination of attacks (§3.3): the component strategies
// apply in order, each seeing the output of the previous one.
type Mixed struct {
	Strategies []Strategy
}

var _ Strategy = (*Mixed)(nil)

// Name implements Strategy.
func (*Mixed) Name() string { return "mixed" }

// Apply implements Strategy.
func (m *Mixed) Apply(t time.Duration, readings []sensor.Reading) []sensor.Reading {
	out := cloneRound(readings)
	for _, s := range m.Strategies {
		out = s.Apply(t, out)
	}
	return out
}

// Benign is the attack the paper explicitly does not classify: the attacker
// behaves exactly like a correct sensor, altering nothing. It exists to test
// that the methodology stays quiet on it.
type Benign struct{}

var _ Strategy = Benign{}

// Name implements Strategy.
func (Benign) Name() string { return "benign" }

// Apply implements Strategy.
func (Benign) Apply(_ time.Duration, readings []sensor.Reading) []sensor.Reading {
	return cloneRound(readings)
}
