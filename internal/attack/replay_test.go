package attack

import (
	"testing"
	"time"

	"sensorguard/internal/sensor"
	"sensorguard/internal/vecmat"
)

func TestReplaySubstitutesStaleReadings(t *testing.T) {
	a := mustAdversary(t, []int{0})
	r := &Replay{Adversary: a, Delay: 2 * time.Hour}

	// Feed an evolving environment: value = hour index.
	for h := 0; h < 6; h++ {
		in := []sensor.Reading{
			{Sensor: 0, Time: time.Duration(h) * time.Hour, Values: vecmat.Vector{float64(h), 0}},
			{Sensor: 1, Time: time.Duration(h) * time.Hour, Values: vecmat.Vector{float64(h), 0}},
		}
		out := r.Apply(time.Duration(h)*time.Hour, in)
		// Correct sensor untouched.
		if out[1].Values[0] != float64(h) {
			t.Fatalf("hour %d: correct sensor modified: %v", h, out[1].Values)
		}
		switch {
		case h < 2:
			// Nothing buffered far enough back: clean pass-through.
			if out[0].Values[0] != float64(h) {
				t.Errorf("hour %d: premature replay: %v", h, out[0].Values)
			}
		default:
			// Replayed from two hours ago.
			if out[0].Values[0] != float64(h-2) {
				t.Errorf("hour %d: replayed %v, want %v", h, out[0].Values[0], h-2)
			}
		}
	}
}

func TestReplayRespectsWindow(t *testing.T) {
	a := mustAdversary(t, []int{0})
	r := &Replay{Adversary: a, Delay: time.Hour, Start: 10 * time.Hour}
	for h := 0; h < 5; h++ {
		in := []sensor.Reading{{Sensor: 0, Time: time.Duration(h) * time.Hour, Values: vecmat.Vector{float64(h), 0}}}
		out := r.Apply(time.Duration(h)*time.Hour, in)
		if out[0].Values[0] != float64(h) {
			t.Errorf("hour %d: replay active before Start", h)
		}
	}
}

func TestReplayPrunesBuffer(t *testing.T) {
	a := mustAdversary(t, []int{0})
	r := &Replay{Adversary: a, Delay: time.Hour}
	for h := 0; h < 200; h++ {
		in := []sensor.Reading{{Sensor: 0, Time: time.Duration(h) * time.Hour, Values: vecmat.Vector{1, 1}}}
		r.Apply(time.Duration(h)*time.Hour, in)
	}
	if n := len(r.buffer[0]); n > 5 {
		t.Errorf("buffer holds %d readings, want pruned to the delay horizon", n)
	}
}
