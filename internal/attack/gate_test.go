package attack

import (
	"testing"
	"time"

	"sensorguard/internal/vecmat"
)

func TestPeriodicGateValidation(t *testing.T) {
	day := 24 * time.Hour
	if _, err := PeriodicGate(0, 0, time.Hour); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := PeriodicGate(day, -time.Hour, time.Hour); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := PeriodicGate(day, 25*time.Hour, time.Hour); err == nil {
		t.Error("offset beyond period accepted")
	}
	if _, err := PeriodicGate(day, 0, 0); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := PeriodicGate(day, 0, 25*time.Hour); err == nil {
		t.Error("duration beyond period accepted")
	}
}

func TestPeriodicGateWindows(t *testing.T) {
	day := 24 * time.Hour
	gate, err := PeriodicGate(day, 2*time.Hour, 3*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    time.Duration
		want bool
	}{
		{0, false},
		{2 * time.Hour, true},
		{4 * time.Hour, true},
		{5 * time.Hour, false},
		{day + 3*time.Hour, true}, // repeats daily
		{day + 6*time.Hour, false},
	}
	for _, tc := range cases {
		if got := gate(tc.t); got != tc.want {
			t.Errorf("gate(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestPeriodicGateWrapsMidnight(t *testing.T) {
	day := 24 * time.Hour
	// 23:00 for 2h wraps to 01:00.
	gate, err := PeriodicGate(day, 23*time.Hour, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !gate(23*time.Hour + 30*time.Minute) {
		t.Error("inactive at 23:30")
	}
	if !gate(day + 30*time.Minute) {
		t.Error("inactive at 00:30 next day")
	}
	if gate(2 * time.Hour) {
		t.Error("active at 02:00")
	}
}

func TestGatedPassThrough(t *testing.T) {
	a := mustAdversary(t, []int{0})
	inner := &DynamicCreation{Adversary: a, Target: vecmat.Vector{50, 50}}
	gate, err := PeriodicGate(24*time.Hour, 0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	g := &Gated{Inner: inner, Active: gate}
	if g.Name() != "dynamic-creation" {
		t.Errorf("Name = %q", g.Name())
	}
	in := round(3, vecmat.Vector{10, 90})

	// Inside the gate the inner attack acts.
	out := g.Apply(30*time.Minute, in)
	if mean(out).Equal(vecmat.Vector{10, 90}, 1e-9) {
		t.Error("inner attack inactive inside gate")
	}
	// Outside the gate readings pass through, deep-copied.
	out = g.Apply(2*time.Hour, in)
	if !mean(out).Equal(vecmat.Vector{10, 90}, 1e-9) {
		t.Error("attack active outside gate")
	}
	out[0].Values[0] = 99
	if in[0].Values[0] != 10 {
		t.Error("gated output aliases input")
	}
	// Nil predicate: always pass-through.
	g2 := &Gated{Inner: inner}
	out = g2.Apply(30*time.Minute, in)
	if !mean(out).Equal(vecmat.Vector{10, 90}, 1e-9) {
		t.Error("nil gate activated attack")
	}
}
