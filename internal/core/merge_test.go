package core

import (
	"strings"
	"testing"

	"sensorguard/internal/classify"
	"sensorguard/internal/cluster"
	"sensorguard/internal/vecmat"
)

// TestMergePropagation drives two model states toward each other until the
// clusterer merges them and verifies every estimator (M_CO, M_CE, M_C, M_O,
// tracks, profiles) survives the replay consistently.
func TestMergePropagation(t *testing.T) {
	cfg := DefaultConfig([]vecmat.Vector{{0, 0}, {5, 0}})
	cfg.QuarantineAfter = 0 // keep the outlier contributing
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}

	merged := false
	for i := 0; i < 60 && !merged; i++ {
		bySensor := make([]vecmat.Vector, 10)
		for s := 0; s < 9; s++ {
			bySensor[s] = vecmat.Vector{2.5, 0}
		}
		// Sensor 9 is a persistent outlier: it keeps a track (and an
		// M_CE estimator and profile) alive through the merge.
		bySensor[9] = vecmat.Vector{50, 50}
		res, err := d.Step(window(i, bySensor))
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range res.Events {
			if ev.Kind == cluster.EventMerge {
				merged = true
			}
		}
	}
	if !merged {
		t.Fatal("states never merged")
	}

	// All estimators must agree on the surviving alphabet and stay
	// stochastic.
	co := d.ModelCO()
	if !co.A.IsRowStochastic(1e-6, false) || !co.B.IsRowStochastic(1e-6, true) {
		t.Errorf("M_CO lost stochasticity after merge:\nA:\n%v\nB:\n%v", co.A, co.B)
	}
	attrs := d.StateAttributes()
	for _, id := range co.HiddenIDs {
		if _, ok := attrs[id]; !ok {
			t.Errorf("M_CO hidden state %d not in the state set %v", id, attrs)
		}
	}
	if ce, ok := d.ModelCE(9); ok {
		if !ce.B.IsRowStochastic(1e-6, true) {
			t.Errorf("M_CE lost stochasticity after merge:\n%v", ce.B)
		}
	} else {
		t.Error("outlier sensor lost its M_CE estimator")
	}
	for _, id := range d.CorrectChain().IDs() {
		if _, ok := attrs[id]; !ok {
			t.Errorf("M_C state %d not in the state set", id)
		}
	}
	// Profile hidden keys must reference surviving states only.
	for hidden := range d.ErrorProfile(9) {
		if _, ok := attrs[hidden]; !ok {
			t.Errorf("profile references merged-away state %d", hidden)
		}
	}
}

func TestReportStringAndOverall(t *testing.T) {
	d := mustDetector(t)
	for i := 0; i < 30; i++ {
		bySensor := make([]vecmat.Vector, 10)
		for s := 0; s < 9; s++ {
			bySensor[s] = vecmat.Vector{24, 70}
		}
		bySensor[9] = vecmat.Vector{15, 1}
		if _, err := d.Step(window(i, bySensor)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := d.Report()
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "detected=true") || !strings.Contains(s, "sensor 9") {
		t.Errorf("report string incomplete: %s", s)
	}
	// A single constant outlier in a constant environment has only one
	// hidden state on its track: the per-sensor evidence is insufficient
	// for calibration/additive; Overall must still be an error or none,
	// never an attack.
	if rep.Overall().IsAttack() {
		t.Errorf("Overall = %v, want non-attack", rep.Overall())
	}
}

func TestOverallPrefersNetworkAttack(t *testing.T) {
	rep := Report{
		Network: classify.NetworkDiagnosis{Kind: classify.KindDynamicDeletion},
		Sensors: map[int]classify.SensorDiagnosis{
			1: {Kind: classify.KindStuckAt},
		},
	}
	if got := rep.Overall(); got != classify.KindDynamicDeletion {
		t.Errorf("Overall = %v, want the network attack", got)
	}
}

func TestOverallMajorityOfSensorKinds(t *testing.T) {
	rep := Report{
		Network: classify.NetworkDiagnosis{Kind: classify.KindNone},
		Sensors: map[int]classify.SensorDiagnosis{
			1: {Kind: classify.KindCalibration},
			2: {Kind: classify.KindCalibration},
			3: {Kind: classify.KindStuckAt},
		},
	}
	if got := rep.Overall(); got != classify.KindCalibration {
		t.Errorf("Overall = %v, want the majority sensor kind", got)
	}
	empty := Report{Network: classify.NetworkDiagnosis{Kind: classify.KindNone}}
	if got := empty.Overall(); got != classify.KindNone {
		t.Errorf("empty Overall = %v, want none", got)
	}
}

func TestWindowDuration(t *testing.T) {
	d := mustDetector(t)
	if got := d.WindowDuration(); got != DefaultConfig(keyStates()).Window {
		t.Errorf("WindowDuration = %v", got)
	}
}
