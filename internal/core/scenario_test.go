package core

import (
	"math"
	"testing"
	"time"

	"sensorguard/internal/attack"
	"sensorguard/internal/classify"
	"sensorguard/internal/fault"
	"sensorguard/internal/gdi"
	"sensorguard/internal/network"
	"sensorguard/internal/vecmat"
)

// These tests drive the complete methodology end-to-end on synthetic GDI
// traces: environment → sensors → faults/attacks → lossy network → windowing
// → detector → structural classification. They are the §4 experiments in
// miniature.

const scenarioDays = 14

func runScenario(t *testing.T, days int, opts ...network.Option) (*Detector, Report) {
	t.Helper()
	cfg := gdi.DefaultGenerateConfig()
	cfg.Days = days
	tr, err := gdi.Generate(cfg, opts...)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	det, err := NewDetector(DefaultConfig(keyStates()))
	if err != nil {
		t.Fatalf("detector: %v", err)
	}
	if _, err := det.ProcessTrace(tr.Readings); err != nil {
		t.Fatalf("process: %v", err)
	}
	rep, err := det.Report()
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	return det, rep
}

func TestScenarioFaultFree(t *testing.T) {
	det, rep := runScenario(t, scenarioDays)

	if rep.Network.Kind != classify.KindNone {
		t.Errorf("network kind = %v, want none\nreport: %v", rep.Network.Kind, rep)
	}
	if got := rep.Overall(); got != classify.KindNone {
		t.Errorf("overall = %v, want none", got)
	}

	// The correct model must contain states near the four GDI dwell
	// states (Fig. 7 structure).
	attrs := det.StateAttributes()
	mc := det.CorrectChain()
	for _, key := range keyStates() {
		found := false
		for id, c := range attrs {
			d, _ := c.Distance(key)
			if d < 5 && mc.Visits(id) > 10 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no well-visited model state near %v; states: %v", key, det.States())
		}
	}

	// Healthy sensors must have a low raw false-alarm rate (the paper
	// measures ≈1.5% on GDI).
	stats := det.AlarmStats()
	for s := 0; s < 10; s++ {
		if rate := stats.RawRate(s); rate > 0.08 {
			t.Errorf("sensor %d raw false-alarm rate = %v, want small", s, rate)
		}
	}
}

func TestScenarioStuckAtFault(t *testing.T) {
	// Sensor 6 degrades from day 2 and sticks at (15,1) — the paper's
	// sensor-6 case (Fig. 8 + Tables 2-3). As in the GDI field data, the
	// dying sensor also thins out its traffic, which keeps its corrupt
	// readings from dominating the network-level mean.
	drop, err := fault.NewIntermittent(0.7, 99)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.NewPlan(
		fault.Schedule{
			Sensor:   6,
			Injector: fault.DecayToStuck{Floor: vecmat.Vector{15, 1}, TimeConstant: 12 * time.Hour},
			Start:    2 * 24 * time.Hour,
		},
		fault.Schedule{Sensor: 6, Injector: drop, Start: 2 * 24 * time.Hour},
	)
	if err != nil {
		t.Fatal(err)
	}
	det, rep := runScenario(t, scenarioDays, network.WithFaults(plan))

	if !rep.Detected {
		t.Fatal("fault not detected")
	}
	if rep.Network.Kind.IsAttack() {
		t.Errorf("fault misclassified as network attack: %v", rep.Network.Kind)
	}
	diag, ok := rep.Sensors[6]
	if !ok {
		t.Fatalf("no diagnosis for sensor 6; tracked: %v", det.TrackedSensors())
	}
	if diag.Kind != classify.KindStuckAt {
		snap, _ := det.ModelCE(6)
		t.Fatalf("sensor 6 kind = %v, want stuck-at\nB^CE:\n%v\nsymbols %v hidden %v",
			diag.Kind, snap.B, snap.SymbolIDs, snap.HiddenIDs)
	}
	// The stuck state's attributes must be near (15,1).
	stuck := det.StateAttributes()[diag.StuckState]
	if d, _ := stuck.Distance(vecmat.Vector{15, 1}); d > 4 {
		t.Errorf("stuck state = %v, want near (15,1)", stuck)
	}
}

func TestScenarioCalibrationFault(t *testing.T) {
	// Sensor 7 with multiplicative miscalibration — the paper's sensor-7
	// case (Tables 4-5).
	plan, err := fault.NewPlan(fault.Schedule{
		Sensor:   7,
		Injector: fault.Calibration{Factors: vecmat.Vector{0.75, 0.80}},
		Start:    24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	det, rep := runScenario(t, scenarioDays, network.WithFaults(plan))

	if !rep.Detected {
		t.Fatal("fault not detected")
	}
	diag, ok := rep.Sensors[7]
	if !ok {
		t.Fatalf("no diagnosis for sensor 7; tracked: %v", det.TrackedSensors())
	}
	if diag.Kind != classify.KindCalibration {
		snap, _ := det.ModelCE(7)
		t.Fatalf("sensor 7 kind = %v, want calibration\nratio=%+v\ndiff=%+v\nB^CE:\n%v\nsymbols %v hidden %v\nstates %v",
			diag.Kind, diag.Ratio, diag.Diff, snap.B, snap.SymbolIDs, snap.HiddenIDs, det.States())
	}
	// Recovered ratios ≈ 1/0.75 and 1/0.80.
	if diag.Ratio.Mean[0] < 1.15 || diag.Ratio.Mean[0] > 1.55 {
		t.Errorf("temperature ratio = %v, want ≈1.33", diag.Ratio.Mean[0])
	}
	if diag.Ratio.Mean[1] < 1.1 || diag.Ratio.Mean[1] > 1.45 {
		t.Errorf("humidity ratio = %v, want ≈1.25", diag.Ratio.Mean[1])
	}
}

func TestScenarioAdditiveFault(t *testing.T) {
	plan, err := fault.NewPlan(fault.Schedule{
		Sensor:   3,
		Injector: fault.Additive{Offsets: vecmat.Vector{9, 5}},
		Start:    24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	det, rep := runScenario(t, scenarioDays, network.WithFaults(plan))

	if !rep.Detected {
		t.Fatal("fault not detected")
	}
	diag, ok := rep.Sensors[3]
	if !ok {
		t.Fatalf("no diagnosis for sensor 3; tracked: %v", det.TrackedSensors())
	}
	if diag.Kind != classify.KindAdditive {
		snap, _ := det.ModelCE(3)
		t.Fatalf("sensor 3 kind = %v, want additive\nratio=%+v\ndiff=%+v\nB^CE:\n%v\nstates %v",
			diag.Kind, diag.Ratio, diag.Diff, snap.B, det.States())
	}
	// Recovered differences ≈ (-9, -5): correct minus error.
	if diag.Diff.Mean[0] > -6 || diag.Diff.Mean[0] < -12 {
		t.Errorf("temperature diff = %v, want ≈-9", diag.Diff.Mean[0])
	}
}

func TestScenarioCreationAttack(t *testing.T) {
	// One third of the sensors compromised; nightly (00:00-03:30) the
	// adversary drives the network mean to the fabricated state (14,66)
	// while the true environment dwells at (12,94) — §4.2 Fig. 11.
	adv, err := attack.NewAdversary([]int{0, 1, 2}, gdi.Ranges())
	if err != nil {
		t.Fatal(err)
	}
	gate, err := attack.PeriodicGate(24*time.Hour, 0, 3*time.Hour+30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	strat := &attack.Gated{
		Inner: &attack.DynamicCreation{
			Adversary: adv,
			Target:    vecmat.Vector{14, 66},
			Start:     4 * 24 * time.Hour,
		},
		Active: gate,
	}
	det, rep := runScenario(t, scenarioDays, network.WithAttack(strat))

	if !rep.Detected {
		t.Fatal("attack not detected")
	}
	if rep.Network.Kind != classify.KindDynamicCreation {
		t.Fatalf("network kind = %v, want dynamic-creation\nviolations rows=%v cols=%v\nB^CO:\n%v\nhidden %v symbols %v\nstates %v",
			rep.Network.Kind, rep.Network.RowViolations, rep.Network.ColViolations,
			det.ModelCO().B, det.ModelCO().HiddenIDs, det.ModelCO().SymbolIDs, det.States())
	}
}

func TestScenarioDeletionAttack(t *testing.T) {
	// The adversary hides the afternoon state (31,56), pinning the
	// network mean at (24,70) — §4.2 Fig. 10.
	adv, err := attack.NewAdversary([]int{0, 1, 2}, gdi.Ranges())
	if err != nil {
		t.Fatal(err)
	}
	strat := &attack.DynamicDeletion{
		Adversary:   adv,
		Target:      vecmat.Vector{31, 56},
		ReplaceWith: vecmat.Vector{24, 70},
		Radius:      6,
		Start:       3 * 24 * time.Hour,
	}
	det, rep := runScenario(t, scenarioDays+7, network.WithAttack(strat))

	if !rep.Detected {
		t.Fatal("attack not detected")
	}
	if rep.Network.Kind != classify.KindDynamicDeletion {
		t.Fatalf("network kind = %v, want dynamic-deletion\nviolations rows=%v cols=%v\nB^CO:\n%v\nhidden %v symbols %v\nstates %v",
			rep.Network.Kind, rep.Network.RowViolations, rep.Network.ColViolations,
			det.ModelCO().B, det.ModelCO().HiddenIDs, det.ModelCO().SymbolIDs, det.States())
	}
}

func TestScenarioChangeAttack(t *testing.T) {
	// The adversary displaces every state by a fixed offset without
	// changing the temporal structure — the Dynamic Change attack of
	// §3.4 (described but not evaluated in the paper).
	adv, err := attack.NewAdversary([]int{0, 1, 2}, gdi.Ranges())
	if err != nil {
		t.Fatal(err)
	}
	strat := &attack.DynamicChange{
		Adversary: adv,
		Offset:    vecmat.Vector{5, -12},
		Start:     2 * 24 * time.Hour,
	}
	det, rep := runScenario(t, scenarioDays+7, network.WithAttack(strat))

	if !rep.Detected {
		t.Fatal("attack not detected")
	}
	if rep.Network.Kind != classify.KindDynamicChange {
		t.Fatalf("network kind = %v, want dynamic-change\nassocs=%v\nB^CO:\n%v\nhidden %v symbols %v\nstates %v",
			rep.Network.Kind, rep.Network.Associations,
			det.ModelCO().B, det.ModelCO().HiddenIDs, det.ModelCO().SymbolIDs, det.States())
	}
}

func TestScenarioRandomNoiseFault(t *testing.T) {
	// A high-variance zero-mean noise fault: the paper deems it hard to
	// classify from HMM structure; the empirical profile identifies it
	// (near-identity per-state means, inflated variance).
	noise, err := fault.NewRandomNoise([]float64{12, 30}, 5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.NewPlan(fault.Schedule{
		Sensor:   2,
		Injector: noise,
		Start:    2 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	det, rep := runScenario(t, scenarioDays, network.WithFaults(plan))

	if !rep.Detected {
		t.Fatal("noise fault not detected")
	}
	if rep.Network.Kind.IsAttack() {
		t.Errorf("noise fault classified as attack %v", rep.Network.Kind)
	}
	diag, ok := rep.Sensors[2]
	if !ok {
		t.Fatalf("no diagnosis for sensor 2; tracked: %v", det.TrackedSensors())
	}
	if diag.Kind != classify.KindRandomNoise {
		t.Errorf("sensor 2 kind = %v (maxStd=%v ratio=%+v), want random-noise",
			diag.Kind, diag.MaxStd, diag.Ratio)
	}
}

// oscillatingFault is a corruption matching none of the paper's fault
// types: the humidity multiplier swings slowly between 0.55 and 0.95, so
// neither the ratio nor the difference is constant, yet per-state variance
// stays structured (not zero-mean noise).
type oscillatingFault struct{}

func (oscillatingFault) Name() string { return "oscillating" }

func (oscillatingFault) Apply(t, _ time.Duration, clean vecmat.Vector) vecmat.Vector {
	out := clean.Clone()
	factor := 0.75 + 0.20*math.Sin(2*math.Pi*t.Hours()/57) // incommensurate with the day
	out[1] *= factor
	out[0] *= 2 - factor
	return out
}

func TestScenarioUnknownErrorFault(t *testing.T) {
	plan, err := fault.NewPlan(fault.Schedule{
		Sensor:   4,
		Injector: oscillatingFault{},
		Start:    2 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	det, rep := runScenario(t, scenarioDays, network.WithFaults(plan))

	if !rep.Detected {
		t.Fatal("oscillating fault not detected")
	}
	if rep.Network.Kind.IsAttack() {
		t.Errorf("single-sensor oscillating fault read as attack %v", rep.Network.Kind)
	}
	diag, ok := rep.Sensors[4]
	if !ok {
		t.Fatalf("no diagnosis for sensor 4; tracked %v", det.TrackedSensors())
	}
	// The fault must be flagged as an error but must NOT be typed as one
	// of the structured kinds it does not match.
	switch diag.Kind {
	case classify.KindCalibration, classify.KindAdditive, classify.KindStuckAt:
		t.Errorf("oscillating fault mis-typed as %v (ratio=%+v diff=%+v maxStd=%v)",
			diag.Kind, diag.Ratio, diag.Diff, diag.MaxStd)
	}
}

func TestScenarioBenignAttackStaysQuiet(t *testing.T) {
	// An attacker mimicking correct behaviour must not be classified
	// (§3.3: benign attacks do not alter the system's behaviour).
	_, rep := runScenario(t, scenarioDays, network.WithAttack(attack.Benign{}))
	if rep.Network.Kind != classify.KindNone {
		t.Errorf("benign attack classified as %v", rep.Network.Kind)
	}
}
