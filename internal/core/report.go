package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"sensorguard/internal/classify"
	"sensorguard/internal/cluster"
	"sensorguard/internal/network"
	"sensorguard/internal/sensor"
)

// Report is the detector's diagnosis (Fig. 5): the network-level attack
// analysis of B^CO plus a per-tracked-sensor error analysis of B^CE.
type Report struct {
	// Detected reports whether any error/attack track was ever opened.
	Detected bool
	// Network is the B^CO structural diagnosis.
	Network classify.NetworkDiagnosis
	// Sensors holds one diagnosis per tracked sensor.
	Sensors map[int]classify.SensorDiagnosis
	// Suspects are the sensors with a track open right now.
	Suspects []int
	// States is the final model-state set.
	States []cluster.State
}

// Overall returns the single headline diagnosis: the network-level attack
// kind when one is present, otherwise the most common per-sensor error kind,
// otherwise KindNone. Ties between equally common kinds break toward the
// smaller Kind value (declaration order in classify), so the result is
// deterministic rather than map-iteration-order dependent.
func (r Report) Overall() classify.Kind {
	if r.Network.Kind.IsAttack() {
		return r.Network.Kind
	}
	counts := make(map[classify.Kind]int)
	for _, d := range r.Sensors {
		if d.Kind.IsError() || d.Kind.IsAttack() {
			counts[d.Kind]++
		}
	}
	best, bestCount := classify.KindNone, 0
	for k, c := range counts {
		if c > bestCount || (c == bestCount && bestCount > 0 && k < best) {
			best, bestCount = k, c
		}
	}
	return best
}

// String renders a human-readable summary.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "detected=%v overall=%v network=%v", r.Detected, r.Overall(), r.Network.Kind)
	ids := make([]int, 0, len(r.Sensors))
	for id := range r.Sensors {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "\nsensor %d: %v", id, r.Sensors[id].Kind)
	}
	return b.String()
}

// Report runs the structural classification on the current models.
func (d *Detector) Report() (Report, error) {
	if d.steps == 0 {
		return Report{}, errors.New("core: no windows processed")
	}
	attrs := d.StateAttributes()
	net, err := classify.Network(d.ModelCO(), attrs, d.cfg.Classify)
	if err != nil {
		return Report{}, fmt.Errorf("network classification: %w", err)
	}
	rep := Report{
		Detected: d.tracks.Opened() > 0,
		Network:  net,
		Sensors:  make(map[int]classify.SensorDiagnosis),
		States:   d.States(),
	}
	for _, id := range d.TrackedSensors() {
		snap, ok := d.ModelCE(id)
		if !ok {
			continue
		}
		diag, err := classify.Sensor(id, snap, attrs, d.ErrorProfile(id), d.cfg.Classify)
		if err != nil {
			if errors.Is(err, classify.ErrNoStates) {
				continue // too little evidence for this sensor
			}
			return Report{}, fmt.Errorf("sensor %d classification: %w", id, err)
		}
		rep.Sensors[id] = diag
	}
	for _, t := range d.tracks.ActiveTracks() {
		rep.Suspects = append(rep.Suspects, t.Sensor)
	}
	return rep, nil
}

// ProcessTrace is a convenience for batch analysis: it windows a complete
// time-ordered trace with the configured window duration and steps the
// detector through every window, returning each step's result.
func (d *Detector) ProcessTrace(readings []sensor.Reading) ([]StepResult, error) {
	windows, err := network.WindowAll(readings, d.cfg.Window)
	if err != nil {
		return nil, err
	}
	out := make([]StepResult, 0, len(windows))
	for _, w := range windows {
		res, err := d.Step(w)
		if err != nil {
			return out, fmt.Errorf("window %d: %w", w.Index, err)
		}
		// Step's result borrows the detector's scratch space; the trace
		// retains every window, so take an independent copy.
		out = append(out, res.Clone())
	}
	return out, nil
}

// WindowDuration returns the configured observation window w.
func (d *Detector) WindowDuration() time.Duration { return d.cfg.Window }
