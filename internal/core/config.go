// Package core wires the paper's full methodology (Fig. 1) into a Detector:
// windowed observations flow through model-state identification (on-line
// clustering), observable/correct state identification, alarm generation and
// filtering, error/attack track management, on-line estimation of the M_CO
// and per-sensor M_CE HMMs and of the M_C/M_O Markov chains, and finally the
// structural classification of §3.4.
package core

import (
	"errors"
	"fmt"
	"time"

	"sensorguard/internal/alarm"
	"sensorguard/internal/classify"
	"sensorguard/internal/cluster"
	"sensorguard/internal/obs"
	"sensorguard/internal/vecmat"
)

// Config collects every tunable of the methodology. The defaults mirror
// Table 1 of the paper.
type Config struct {
	// Dim is the attribute dimensionality (2 for the GDI traces).
	Dim int
	// InitialStates seeds the Model State Identification module (the
	// paper's M = 6 initial states, from an offline clustering pass or
	// random).
	InitialStates []vecmat.Vector
	// Window is the observation window duration w. The paper uses 12
	// samples of 5 minutes = 1 hour.
	Window time.Duration
	// Alpha is the model-state learning factor (Table 1: 0.10).
	Alpha float64
	// Beta is the transition-matrix learning factor (Table 1: 0.90).
	Beta float64
	// Gamma is the emission-matrix learning factor (Table 1: 0.90).
	Gamma float64
	// MergeDistance and SpawnDistance drive the clusterer's structural
	// updates (§3.1: merge states too close, spawn for observations too
	// far); CaptureDistance bounds the annulus of ambiguous observations
	// that neither update nor spawn states (see cluster.Config).
	MergeDistance, SpawnDistance, CaptureDistance float64
	// MaxStates caps the model-state count (0 = uncapped).
	MaxStates int
	// FilterK and FilterN parameterise the k-of-n alarm filter.
	FilterK, FilterN int
	// FilterFactory, when non-nil, supplies the alarm filter instead of
	// the k-of-n default — e.g. the SPRT or CUSUM filters of §3.1.
	FilterFactory func() (alarm.Filter, error)
	// MinSensors skips windows with fewer reporting sensors (the
	// majority assumption needs a quorum).
	MinSensors int
	// SnapDeadband snaps the observable state onto the correct state
	// when the overall mean is within this distance margin of a tie
	// between them — Eq. (2)'s argmin is noise-determined at such
	// boundaries. Zero disables snapping.
	SnapDeadband float64
	// QuarantineAfter enables the recovery action the paper motivates
	// (§1: "distinguishing faults from attacks is necessary to initiate a
	// correct recovery action"): once a sensor's track has been open for
	// this many windows and its M_CE diagnoses an accidental error, the
	// sensor's readings stop contributing to the observable-state
	// estimate (Eq. 2). Zero disables quarantine.
	QuarantineAfter int
	// QuarantineCoordinated withholds quarantine when more than this
	// fraction of sensors carry the *same* error diagnosis at once:
	// identical signatures on many sensors are the hallmark of a
	// coordinated attack (e.g. Dynamic Change mimics simultaneous
	// additive faults), which must stay visible in B^CO.
	QuarantineCoordinated float64
	// Classify holds the structural-analysis thresholds.
	Classify classify.Config
	// Observer, when non-nil, receives per-window metrics and structured
	// events from the detector (see internal/obs): counters/gauges/stage
	// latency histograms in Observer.Metrics and one obs.Event per window
	// on Observer.Sink. A nil Observer adds no overhead to Step.
	Observer *obs.Observer
	// Tracer, when non-nil, records a "detector.step" span with per-stage
	// children for every window carrying a sampled span context (see
	// network.Window.Trace). A nil tracer adds only a nil check to Step.
	Tracer *obs.Tracer
	// Decisions, when non-nil, receives one DecisionRecord per window —
	// the full provenance of the verdict. Nil adds no overhead.
	Decisions DecisionSink
}

// DefaultConfig returns the Table 1 configuration for the given initial
// states: w = 1h (12 × 5-minute samples), α = 0.10, and HMM update weights
// β = γ = 0.10, plus the engineering defaults the paper leaves unstated
// (merge/spawn distances scaled to the GDI attribute space, a 4-of-6 alarm
// filter, a 3-sensor quorum).
//
// A note on β and γ: Table 1 lists 0.90 for both, but the paper's own
// emission matrices hold stable mixtures (e.g. the 0.3546/0.6454 split of
// Table 7), which the update b ← (1-γ)b + γδ cannot sustain when each new
// observation carries weight 0.9. We therefore read Table 1's 0.90 as the
// *retention* weight (1-γ) and default the update weight to 0.10, keeping
// the §3.2 update formula exactly as written.
func DefaultConfig(initialStates []vecmat.Vector) Config {
	return Config{
		Dim:                   2,
		InitialStates:         initialStates,
		Window:                time.Hour,
		Alpha:                 0.10,
		Beta:                  0.10,
		Gamma:                 0.10,
		MergeDistance:         4,
		SpawnDistance:         9,
		CaptureDistance:       5,
		MaxStates:             24,
		FilterK:               4,
		FilterN:               6,
		MinSensors:            3,
		SnapDeadband:          1.5,
		QuarantineAfter:       24,
		QuarantineCoordinated: 0.25,
		Classify:              classify.DefaultConfig(),
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error { return c.validate(true) }

// validate checks the configuration; requireSeeds relaxes the initial-state
// requirement for detectors rebuilt from a snapshot, whose model states come
// from the snapshot rather than from InitialStates.
func (c Config) validate(requireSeeds bool) error {
	if c.Dim <= 0 {
		return errors.New("core: dimension must be positive")
	}
	if requireSeeds && len(c.InitialStates) == 0 {
		return errors.New("core: need at least one initial model state")
	}
	for i, s := range c.InitialStates {
		if len(s) != c.Dim {
			return fmt.Errorf("core: initial state %d has dimension %d, want %d", i, len(s), c.Dim)
		}
	}
	if c.Window <= 0 {
		return errors.New("core: window must be positive")
	}
	for _, f := range []float64{c.Alpha, c.Beta, c.Gamma} {
		if f <= 0 || f >= 1 {
			return fmt.Errorf("core: learning factor %v outside (0,1)", f)
		}
	}
	if c.FilterK < 1 || c.FilterN < c.FilterK {
		return fmt.Errorf("core: need 1 <= FilterK <= FilterN, got %d/%d", c.FilterK, c.FilterN)
	}
	if c.MinSensors < 1 {
		return errors.New("core: MinSensors must be at least 1")
	}
	cc := cluster.Config{
		Alpha:           c.Alpha,
		MergeDistance:   c.MergeDistance,
		SpawnDistance:   c.SpawnDistance,
		CaptureDistance: c.CaptureDistance,
		MaxStates:       c.MaxStates,
	}
	return cc.Validate()
}
