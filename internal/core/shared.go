package core

import (
	"sync"

	"sensorguard/internal/classify"
	"sensorguard/internal/network"
	"sensorguard/internal/vecmat"
)

// Shared wraps a Detector for concurrent use. The Detector itself is
// single-owner by design (one collector drives it), but a serving system has
// two kinds of callers: the shard worker stepping windows through it, and
// HTTP handlers snapshotting reports, stats, and quarantine sets while the
// stream is live. Shared serialises both behind one mutex so snapshots are
// taken between — never inside — windows.
type Shared struct {
	mu sync.Mutex
	d  *Detector
}

// NewShared wraps a detector. The caller must stop using the bare detector
// afterwards.
func NewShared(d *Detector) *Shared {
	return &Shared{d: d}
}

// Step folds in one observation window.
func (s *Shared) Step(w network.Window) (StepResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Step(w)
}

// Report runs the structural classification on the current models.
func (s *Shared) Report() (Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Report()
}

// Stats returns a snapshot of the detector's internal counters.
func (s *Shared) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Stats()
}

// Snapshot exports the detector's complete state between windows.
func (s *Shared) Snapshot() (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Snapshot()
}

// Quarantined returns the sensors currently excluded from the observable
// estimate, in ascending order.
func (s *Shared) Quarantined() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Quarantined()
}

// StateAttributes returns the attribute vector of every current model state,
// keyed by state ID.
func (s *Shared) StateAttributes() map[int]vecmat.Vector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.StateAttributes()
}

// Diagnose runs the per-sensor classification for one tracked sensor.
func (s *Shared) Diagnose(sensorID int) (classify.SensorDiagnosis, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, ok := s.d.ModelCE(sensorID)
	if !ok {
		return classify.SensorDiagnosis{}, false
	}
	diag, err := classify.Sensor(sensorID, snap, s.d.StateAttributes(),
		s.d.ErrorProfile(sensorID), s.d.cfg.Classify)
	if err != nil {
		return classify.SensorDiagnosis{}, false
	}
	return diag, true
}
