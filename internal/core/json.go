package core

import (
	"encoding/json"

	"sensorguard/internal/classify"
)

// ReportJSON is the machine-readable form of a Report, for dashboards and
// downstream automation. Matrices are omitted; use the Model* accessors for
// those.
type ReportJSON struct {
	Detected bool               `json:"detected"`
	Overall  string             `json:"overall"`
	Network  NetworkJSON        `json:"network"`
	Sensors  []SensorReportJSON `json:"sensors"`
	Suspects []int              `json:"suspects,omitempty"`
	States   []StateJSON        `json:"states"`
}

// NetworkJSON is the B^CO analysis.
type NetworkJSON struct {
	Kind          string          `json:"kind"`
	Confidence    float64         `json:"confidence"`
	RowViolations []ViolationJSON `json:"rowViolations,omitempty"`
	ColViolations []ViolationJSON `json:"colViolations,omitempty"`
}

// ViolationJSON is one failed orthogonality condition.
type ViolationJSON struct {
	I   int     `json:"i"`
	J   int     `json:"j"`
	Dot float64 `json:"dot"`
}

// SensorReportJSON is one suspect sensor's diagnosis.
type SensorReportJSON struct {
	Sensor     int       `json:"sensor"`
	Kind       string    `json:"kind"`
	Confidence float64   `json:"confidence"`
	StuckState []float64 `json:"stuckState,omitempty"`
	RatioMean  []float64 `json:"ratioMean,omitempty"`
	DiffMean   []float64 `json:"diffMean,omitempty"`
}

// StateJSON is one model state.
type StateJSON struct {
	ID     int       `json:"id"`
	Attrs  []float64 `json:"attrs"`
	Weight float64   `json:"weight"`
}

// JSON converts the report (resolving stuck-state attributes through the
// report's state snapshot) into its serialisable form.
func (r Report) JSON() ReportJSON {
	out := ReportJSON{
		Detected: r.Detected,
		Overall:  r.Overall().String(),
		Network: NetworkJSON{
			Kind:       r.Network.Kind.String(),
			Confidence: r.Network.Confidence,
		},
		Suspects: append([]int(nil), r.Suspects...),
	}
	for _, v := range r.Network.RowViolations {
		if v.I == v.J {
			continue
		}
		out.Network.RowViolations = append(out.Network.RowViolations,
			ViolationJSON{I: v.I, J: v.J, Dot: v.Dot})
	}
	for _, v := range r.Network.ColViolations {
		out.Network.ColViolations = append(out.Network.ColViolations,
			ViolationJSON{I: v.I, J: v.J, Dot: v.Dot})
	}
	attrs := map[int][]float64{}
	for _, s := range r.States {
		attrs[s.ID] = s.Centroid
		out.States = append(out.States, StateJSON{ID: s.ID, Attrs: s.Centroid, Weight: s.Weight})
	}
	for _, id := range sortedSensorIDs(r.Sensors) {
		diag := r.Sensors[id]
		sj := SensorReportJSON{Sensor: id, Kind: diag.Kind.String(), Confidence: diag.Confidence}
		if diag.Kind == classify.KindStuckAt {
			sj.StuckState = attrs[diag.StuckState]
		}
		if len(diag.Ratio.Mean) > 0 {
			sj.RatioMean = diag.Ratio.Mean
		}
		if len(diag.Diff.Mean) > 0 {
			sj.DiffMean = diag.Diff.Mean
		}
		out.Sensors = append(out.Sensors, sj)
	}
	return out
}

// MarshalIndentJSON renders the report as indented JSON.
func (r Report) MarshalIndentJSON() ([]byte, error) {
	return json.MarshalIndent(r.JSON(), "", "  ")
}

func sortedSensorIDs(m map[int]classify.SensorDiagnosis) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}
