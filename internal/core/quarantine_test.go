package core

import (
	"testing"
	"time"

	"sensorguard/internal/attack"
	"sensorguard/internal/classify"
	"sensorguard/internal/fault"
	"sensorguard/internal/gdi"
	"sensorguard/internal/network"
	"sensorguard/internal/vecmat"
)

func TestQuarantineIsolatesLoudStuckSensor(t *testing.T) {
	// A stuck sensor transmitting at full rate shifts the network mean by
	// almost a full state; quarantine must kick in once its M_CE shows
	// the stuck structure, keeping B^CO orthogonal.
	plan, err := fault.NewPlan(fault.Schedule{
		Sensor:   6,
		Injector: fault.StuckAt{Value: vecmat.Vector{15, 1}},
		Start:    2 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	det, rep := runScenario(t, scenarioDays, network.WithFaults(plan))

	if got := det.Quarantined(); len(got) != 1 || got[0] != 6 {
		t.Errorf("Quarantined = %v, want [6]", got)
	}
	if rep.Network.Kind.IsAttack() {
		t.Errorf("loud stuck sensor classified as attack %v\nB^CO:\n%v",
			rep.Network.Kind, det.ModelCO().B)
	}
	diag, ok := rep.Sensors[6]
	if !ok || diag.Kind != classify.KindStuckAt {
		t.Errorf("sensor 6 diagnosis = %+v, want stuck-at", diag)
	}
}

func TestQuarantineWithheldForCoordinatedSensors(t *testing.T) {
	// A Dynamic-Change attack makes its three malicious sensors look like
	// identical additive faults; the coordination rule must keep them in
	// the network view so the change signature survives.
	adv, err := attack.NewAdversary([]int{0, 1, 2}, gdi.Ranges())
	if err != nil {
		t.Fatal(err)
	}
	strat := &attack.DynamicChange{
		Adversary: adv,
		Offset:    vecmat.Vector{5, -12},
		Start:     2 * 24 * time.Hour,
	}
	det, rep := runScenario(t, scenarioDays+7, network.WithAttack(strat))

	if got := det.Quarantined(); len(got) != 0 {
		t.Errorf("coordinated sensors quarantined: %v", got)
	}
	if rep.Network.Kind != classify.KindDynamicChange {
		t.Errorf("network kind = %v, want dynamic-change", rep.Network.Kind)
	}
}

func TestQuarantineDisabled(t *testing.T) {
	cfg := DefaultConfig(keyStates())
	cfg.QuarantineAfter = 0
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A persistent outlier never gets quarantined when disabled.
	for i := 0; i < 60; i++ {
		bySensor := make([]vecmat.Vector, 10)
		for s := 0; s < 9; s++ {
			bySensor[s] = vecmat.Vector{24, 70}
		}
		bySensor[9] = vecmat.Vector{15, 1}
		if _, err := det.Step(window(i, bySensor)); err != nil {
			t.Fatal(err)
		}
	}
	if got := det.Quarantined(); len(got) != 0 {
		t.Errorf("quarantine ran while disabled: %v", got)
	}
}

func TestQuarantineLiftsWhenSensorRecovers(t *testing.T) {
	cfg := DefaultConfig(keyStates())
	cfg.QuarantineAfter = 10
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	step := func(i int, bad bool) {
		bySensor := make([]vecmat.Vector, 10)
		for s := 0; s < 10; s++ {
			bySensor[s] = keyStates()[i%4].Clone()
		}
		if bad {
			bySensor[9] = vecmat.Vector{45, 20} // far from every key state
		}
		if _, err := det.Step(window(i, bySensor)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		step(i, true)
	}
	if got := det.Quarantined(); len(got) != 1 {
		t.Fatalf("Quarantined = %v, want sensor 9 isolated", got)
	}
	for i := 40; i < 60; i++ {
		step(i, false)
	}
	if got := det.Quarantined(); len(got) != 0 {
		t.Errorf("quarantine not lifted after recovery: %v", got)
	}
}
