package core

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"time"

	"sensorguard/internal/alarm"
	"sensorguard/internal/classify"
	"sensorguard/internal/cluster"
	"sensorguard/internal/hmm"
	"sensorguard/internal/markov"
	"sensorguard/internal/network"
	"sensorguard/internal/obs"
	"sensorguard/internal/sensor"
	runstats "sensorguard/internal/stats"
	"sensorguard/internal/track"
	"sensorguard/internal/vecmat"
)

// Detector is the collector-side analysis procedure of Fig. 1. It is not
// safe for concurrent use: a deployment has a single collector driving it.
type Detector struct {
	cfg Config

	states *cluster.Set
	mco    *hmm.Online
	mce    map[int]*hmm.Online
	mc     *markov.Chain
	mo     *markov.Chain

	filter alarm.Filter
	stats  *alarm.Stats
	tracks *track.Manager

	quarantined map[int]bool
	seen        map[int]bool

	inst *instruments
	// tracer and decisions are the provenance hooks: tracer records stage
	// spans for windows carrying a sampled trace context, decisions
	// receives one DecisionRecord per window. Both nil in the bare hot
	// path.
	tracer    *obs.Tracer
	decisions DecisionSink
	// health receives one cheap HealthSample per window (see health.go);
	// nil when drift telemetry is off. driftBase is the post-bootstrap
	// M_C/M_O reference the polled shift metrics compare against.
	health    *obs.HealthTracker
	driftBase *driftBaseline
	// hc accumulates the window's health counts inside the per-sensor
	// loop (which already has every value in registers), so observeHealth
	// never re-walks the sensors map on the hot path.
	hc healthCounts
	// epoch anchors stage timing: boundaries take monotonic marks via
	// time.Since(epoch), which skips the wall-clock read of time.Now and
	// roughly halves the per-mark cost on the instrumented hot path.
	epoch time.Time

	// profiles accumulate, per tracked sensor and hidden state, the
	// per-attribute statistics of the sensor's own readings while it was
	// alarming — the empirical error-state attributes the classifier's
	// ratio/difference test runs on.
	profiles map[int]map[int][]runstats.Running

	// scratch holds the per-window working set, reused across Steps so the
	// bare (uninstrumented) hot path allocates nothing in steady state.
	scratch stepScratch

	steps   int
	skipped int
}

// stepScratch is the detector's reusable per-window working set. Every slice
// and map here is cleared (not reallocated) at the start of each step; the
// returned StepResult borrows the sensors map, which is why Step's result is
// only valid until the next call (see StepResult).
type stepScratch struct {
	slot    map[int]int       // sensor ID → accumulation slot
	ids     []int             // sensor IDs, sorted ascending after grouping
	sums    []vecmat.Vector   // per-slot sum, then mean, of the window's readings
	counts  []int             // per-slot reading count
	points  []vecmat.Vector   // per-sensor means in ids order (aliases sums rows)
	values  []vecmat.Vector   // non-quarantined raw readings for Eq. (2)
	mapped  []int             // Eq. (3) assignment output
	overall vecmat.Vector     // Eq. (2) network mean
	states  map[int]int       // majority vote tally
	sensors map[int]SensorStep // StepResult.Sensors backing store
}

// SensorStep is the per-sensor outcome of one window.
type SensorStep struct {
	// Mapped is the model state the sensor's observation mapped to (l_j).
	Mapped int
	// Raw and Filtered are the alarm levels this window.
	Raw, Filtered bool
	// TrackOpen reports whether an error/attack track is open after this
	// window.
	TrackOpen bool
	// Symbol is the error/attack symbol recorded on the sensor's track
	// (track.Bottom when agreeing); meaningful only when Recorded.
	Symbol   int
	Recorded bool
}

// StepResult is the outcome of one observation window.
//
// The Sensors map is borrowed from the detector's reusable scratch space: it
// is valid until the next call to Step on the same detector, which clears and
// refills it in place. Callers that retain results across windows (slices of
// step outcomes, test fixtures) must take a Clone first; callers that consume
// the result before stepping again (the streaming fleet, metric sinks) read
// it for free.
type StepResult struct {
	// Index is the window ordinal.
	Index int
	// Skipped reports that the window had too few sensors and was
	// ignored.
	Skipped bool
	// Observable and Correct are o_i and c_i (model-state IDs).
	Observable, Correct int
	// Sensors holds the per-sensor outcomes, keyed by sensor ID. Borrowed:
	// valid until the next Step.
	Sensors map[int]SensorStep
	// Events are the structural model-state changes after this window.
	Events []cluster.Event
}

// Clone returns an independent deep copy of the result, safe to retain after
// the next Step.
func (r StepResult) Clone() StepResult {
	out := r
	if r.Sensors != nil {
		out.Sensors = make(map[int]SensorStep, len(r.Sensors))
		for id, s := range r.Sensors {
			out.Sensors[id] = s
		}
	}
	if r.Events != nil {
		out.Events = append([]cluster.Event(nil), r.Events...)
	}
	return out
}

// NewDetector builds a detector from the configuration.
func NewDetector(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	set, err := cluster.New(cluster.Config{
		Alpha:           cfg.Alpha,
		MergeDistance:   cfg.MergeDistance,
		SpawnDistance:   cfg.SpawnDistance,
		CaptureDistance: cfg.CaptureDistance,
		MaxStates:       cfg.MaxStates,
	}, cfg.Dim, cfg.InitialStates)
	if err != nil {
		return nil, err
	}
	mco, err := hmm.NewOnline(cfg.Beta, cfg.Gamma)
	if err != nil {
		return nil, err
	}
	mc, err := markov.NewChain(cfg.Beta)
	if err != nil {
		return nil, err
	}
	mo, err := markov.NewChain(cfg.Beta)
	if err != nil {
		return nil, err
	}
	var filter alarm.Filter
	if cfg.FilterFactory != nil {
		filter, err = cfg.FilterFactory()
	} else {
		filter, err = alarm.NewKOfN(cfg.FilterK, cfg.FilterN)
	}
	if err != nil {
		return nil, err
	}
	return &Detector{
		cfg:         cfg,
		states:      set,
		mco:         mco,
		mce:         make(map[int]*hmm.Online),
		mc:          mc,
		mo:          mo,
		filter:      filter,
		stats:       alarm.NewStats(),
		tracks:      track.NewManager(),
		quarantined: make(map[int]bool),
		seen:        make(map[int]bool),
		profiles:    make(map[int]map[int][]runstats.Running),
		inst:        newInstruments(cfg.Observer),
		tracer:      cfg.Tracer,
		decisions:   cfg.Decisions,
		epoch:       time.Now(),
	}, nil
}

// SetTracer installs (or removes) the span tracer. The serving layer wires
// it after construction because detectors are built behind factory hooks
// (fleet bootstrap, checkpoint restore) that predate the pool's tracer.
func (d *Detector) SetTracer(t *obs.Tracer) { d.tracer = t }

// SetDecisionSink installs (or removes) the per-window decision sink; wired
// post-construction for the same reason as SetTracer.
func (d *Detector) SetDecisionSink(s DecisionSink) { d.decisions = s }

// Step folds in one observation window.
func (d *Detector) Step(w network.Window) (StepResult, error) {
	traced := d.tracer != nil && w.Trace.Recording()
	if d.inst == nil && !traced && d.decisions == nil {
		res, err := d.step(w, nil)
		if err == nil && d.health != nil {
			d.observeHealth(res)
		}
		return res, err
	}
	ev := obs.Event{Window: w.Index, Readings: len(w.Readings)}
	res, err := d.step(w, &ev)
	if err != nil {
		return res, err
	}
	lat := &ev.Latency
	lat.TotalNS = lat.DeriveNS + lat.ClassifyNS + lat.MapNS + lat.AlarmNS + lat.HMMNS
	if d.inst != nil {
		d.inst.finish(d, res, &ev)
	}
	if traced {
		d.emitSpans(w, &ev)
	}
	if d.decisions != nil {
		d.decisions.Record(d.decide(w, res))
	}
	if d.health != nil {
		d.observeHealth(res)
	}
	return res, nil
}

// emitSpans registers the window's stage spans post hoc: the boundaries were
// already measured as cumulative marks in step, so the spans are
// reconstructed backwards from now using the recorded stage latencies —
// the hot path never takes extra timestamps for tracing.
func (d *Detector) emitSpans(w network.Window, ev *obs.Event) {
	end := time.Now()
	start := end.Add(-time.Duration(ev.Latency.TotalNS))
	root := d.tracer.StartSpanAt("detector.step", w.Trace, start)
	root.SetInt("window", int64(ev.Window))
	if ev.Skipped {
		root.SetAttr("skipped", "true")
	} else {
		root.SetInt("observable", int64(ev.Observable))
		root.SetInt("correct", int64(ev.Correct))
		root.SetInt("raw_alarms", int64(ev.RawAlarms))
		root.SetInt("filtered_alarms", int64(ev.FilteredAlarms))
	}
	ctx := root.Context()
	cursor := start
	for _, st := range []struct {
		name string
		ns   int64
	}{
		{"detector.derive", ev.Latency.DeriveNS},
		{"detector.classify", ev.Latency.ClassifyNS},
		{"detector.map", ev.Latency.MapNS},
		{"detector.alarm", ev.Latency.AlarmNS},
		{"detector.hmm", ev.Latency.HMMNS},
	} {
		sp := d.tracer.StartSpanAt(st.name, ctx, cursor)
		cursor = cursor.Add(time.Duration(st.ns))
		sp.EndAt(cursor)
	}
	root.EndAt(end)
}

// step is the uninstrumented pipeline body. ev is nil when no observer is
// configured; when set, step records per-stage latencies and per-window
// counts into it.
func (d *Detector) step(w network.Window, ev *obs.Event) (StepResult, error) {
	sc := &d.scratch
	if sc.sensors == nil {
		sc.sensors = make(map[int]SensorStep)
	} else {
		clear(sc.sensors)
	}
	res := StepResult{Index: w.Index, Sensors: sc.sensors}

	// Per-sensor window means are the observations p_j of Eq. (2)-(4).
	// Stage timing takes cumulative monotonic marks against d.epoch
	// (time.Since skips the wall-clock read and is ~2x cheaper than
	// time.Now), so the instrumented path stays within noise of the bare
	// pipeline.
	var mark int64
	if ev != nil {
		mark = time.Since(d.epoch).Nanoseconds()
	}
	ids, points, err := d.sensorMeans(w.Readings)
	if err != nil {
		return res, err
	}
	if ev != nil {
		cum := time.Since(d.epoch).Nanoseconds()
		ev.Latency.DeriveNS = cum - mark
		ev.Sensors = len(ids)
		mark = cum
	}
	if len(ids) < d.cfg.MinSensors {
		res.Skipped = true
		if ev != nil {
			ev.Skipped = true
		}
		d.skipped++
		return res, nil
	}
	for _, id := range ids {
		d.seen[id] = true
	}
	d.refreshQuarantine(w.Index)
	if ev != nil {
		cum := time.Since(d.epoch).Nanoseconds()
		ev.Latency.ClassifyNS = cum - mark
		mark = cum
	}

	// Eq. (2) averages over *all* observations in the window, not over
	// per-sensor means: a sensor's influence on the observable state is
	// proportional to the traffic it actually delivers (a dying, thinning
	// sensor fades from the network view). Quarantined sensors — already
	// diagnosed as erroneous — are excluded from the network view.
	sc.values = sc.values[:0]
	for _, r := range w.Readings {
		if d.quarantined[r.Sensor] {
			continue
		}
		sc.values = append(sc.values, r.Values)
	}
	if len(sc.values) == 0 {
		for _, r := range w.Readings {
			sc.values = append(sc.values, r.Values)
		}
	}
	overall, err := d.meanInto(sc.values)
	if err != nil {
		return res, err
	}
	observable, distO, err := d.states.Nearest(overall) // Eq. (2)
	if err != nil {
		return res, err
	}
	sc.mapped, err = d.states.AssignTo(points, sc.mapped) // Eq. (3)
	if err != nil {
		return res, err
	}
	mapped := sc.mapped
	correct := d.majorityState(mapped) // Eq. (4)

	// Boundary deadband: when the overall mean sits essentially at a tie
	// between the correct state and another, Eq. (2)'s argmin is decided
	// by measurement noise, not by the environment. Snap such ambiguous
	// observables onto the correct state so transition windows do not
	// fabricate anomaly structure in M_CO (genuine attacks displace the
	// mean far beyond the deadband).
	if observable != correct && d.cfg.SnapDeadband > 0 {
		if dc, ok := d.states.DistanceTo(correct, overall); ok && dc-distO < d.cfg.SnapDeadband {
			observable = correct
		}
	}

	res.Observable, res.Correct = observable, correct
	if ev != nil {
		cum := time.Since(d.epoch).Nanoseconds()
		ev.Latency.MapNS = cum - mark
		ev.Observable, ev.Correct = observable, correct
		mark = cum
	}

	// Alarm generation, filtering, and track management per sensor.
	trackHealth := d.health != nil
	if trackHealth {
		d.hc = healthCounts{}
	}
	for i, id := range ids {
		raw := mapped[i] != correct
		filtered := d.filter.Observe(id, raw)
		d.stats.Record(id, raw, filtered)

		tr, symbol, recorded := d.tracks.Observe(w.Index, id, filtered, mapped[i], correct)
		if trackHealth {
			if raw {
				d.hc.raw++
			}
			if filtered {
				d.hc.filtered++
			}
			if recorded {
				d.hc.symbols++
				if symbol == track.Bottom {
					d.hc.bottoms++
				}
			}
		}
		if ev != nil {
			if raw {
				ev.RawAlarms++
			}
			if filtered {
				ev.FilteredAlarms++
			}
			if tr != nil {
				if tr.Closed == w.Index {
					ev.TracksClosed = append(ev.TracksClosed, id)
				} else if tr.Opened == w.Index {
					ev.TracksOpened = append(ev.TracksOpened, id)
				}
			}
		}
		step := SensorStep{
			Mapped:   mapped[i],
			Raw:      raw,
			Filtered: filtered,
			Symbol:   symbol,
			Recorded: recorded,
		}
		if _, open := d.tracks.Active(id); open {
			step.TrackOpen = true
		}
		if recorded {
			est, err := d.ce(id)
			if err != nil {
				return res, err
			}
			est.Observe(correct, symbol)
			if symbol != track.Bottom {
				d.recordProfile(id, correct, points[i])
			}
		}
		res.Sensors[id] = step
	}
	if ev != nil {
		cum := time.Since(d.epoch).Nanoseconds()
		ev.Latency.AlarmNS = cum - mark
		mark = cum
	}

	// Environment models.
	d.mco.Observe(correct, observable)
	d.mc.Observe(correct)
	d.mo.Observe(observable)

	// Model-state adaptation (Eqs. 5-6 + merge/spawn), with structural
	// events replayed onto every estimator.
	events, err := d.states.Adapt(points, overall)
	if err != nil {
		return res, err
	}
	for _, ev := range events {
		if ev.Kind != cluster.EventMerge {
			continue
		}
		if err := d.applyMerge(ev.Into, ev.From); err != nil {
			return res, err
		}
	}
	res.Events = events
	if ev != nil {
		ev.Latency.HMMNS = time.Since(d.epoch).Nanoseconds() - mark
	}
	d.steps++
	return res, nil
}

// refreshQuarantine re-derives the quarantine set: sensors whose track has
// been open for at least QuarantineAfter windows and whose M_CE diagnoses an
// accidental error — unless the same diagnosis is shared by more than
// QuarantineCoordinated of the sensors, which indicates a coordinated attack
// that must remain visible in B^CO. The set is rebuilt each window, so a
// closing track lifts the quarantine automatically.
func (d *Detector) refreshQuarantine(window int) {
	if d.cfg.QuarantineAfter <= 0 {
		return
	}
	// Steady-state early-out: with no open tracks there is nothing to
	// diagnose and nothing to quarantine — skip the map churn entirely.
	if d.tracks.OpenCount() == 0 {
		if len(d.quarantined) > 0 {
			clear(d.quarantined)
		}
		return
	}
	kinds := make(map[int]classify.Kind)
	var attrs map[int]vecmat.Vector
	for _, tr := range d.tracks.ActiveTracks() {
		if window-tr.Opened < d.cfg.QuarantineAfter {
			continue
		}
		snap, ok := d.ModelCE(tr.Sensor)
		if !ok {
			continue
		}
		if attrs == nil {
			attrs = d.StateAttributes()
		}
		diag, err := classify.Sensor(tr.Sensor, snap, attrs, d.ErrorProfile(tr.Sensor), d.cfg.Classify)
		if err != nil {
			continue
		}
		if diag.Kind.IsError() {
			kinds[tr.Sensor] = diag.Kind
		}
	}
	counts := make(map[classify.Kind]int)
	for _, k := range kinds {
		counts[k]++
	}
	next := make(map[int]bool, len(kinds))
	for id, k := range kinds {
		if len(d.seen) > 0 &&
			float64(counts[k])/float64(len(d.seen)) > d.cfg.QuarantineCoordinated {
			continue
		}
		next[id] = true
	}
	d.quarantined = next
}

// Quarantined returns the sensors currently excluded from the observable
// estimate, in ascending order.
func (d *Detector) Quarantined() []int {
	out := make([]int, 0, len(d.quarantined))
	for id := range d.quarantined {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// recordProfile folds one alarming window's reading into the sensor's
// per-hidden-state statistics.
func (d *Detector) recordProfile(sensorID, hidden int, value vecmat.Vector) {
	bySensor, ok := d.profiles[sensorID]
	if !ok {
		bySensor = make(map[int][]runstats.Running)
		d.profiles[sensorID] = bySensor
	}
	rs, ok := bySensor[hidden]
	if !ok {
		rs = make([]runstats.Running, d.cfg.Dim)
		bySensor[hidden] = rs
	}
	for i := 0; i < d.cfg.Dim && i < len(value); i++ {
		rs[i].Add(value[i])
	}
}

// ErrorProfile returns a sensor's empirical per-hidden-state statistics.
func (d *Detector) ErrorProfile(sensorID int) classify.ErrorProfile {
	bySensor := d.profiles[sensorID]
	out := make(classify.ErrorProfile, len(bySensor))
	for hidden, rs := range bySensor {
		st := classify.ErrorStats{
			Mean: make(vecmat.Vector, len(rs)),
			Std:  make(vecmat.Vector, len(rs)),
		}
		for i := range rs {
			st.Mean[i] = rs[i].Mean()
			st.Std[i] = rs[i].StdDev()
			st.N = rs[i].N()
		}
		out[hidden] = st
	}
	return out
}

// ce returns (building lazily) the M_CE estimator for a sensor.
func (d *Detector) ce(sensorID int) (*hmm.Online, error) {
	if est, ok := d.mce[sensorID]; ok {
		return est, nil
	}
	est, err := hmm.NewOnline(d.cfg.Beta, d.cfg.Gamma)
	if err != nil {
		return nil, err
	}
	d.mce[sensorID] = est
	return est, nil
}

// applyMerge replays a model-state merge onto every estimator that indexes
// by state ID.
func (d *Detector) applyMerge(into, from int) error {
	if err := mergeOnline(d.mco, into, from); err != nil {
		return fmt.Errorf("M_CO: %w", err)
	}
	for id, est := range d.mce {
		if err := mergeOnline(est, into, from); err != nil {
			return fmt.Errorf("M_CE sensor %d: %w", id, err)
		}
	}
	if err := mergeChain(d.mc, into, from); err != nil {
		return fmt.Errorf("M_C: %w", err)
	}
	if err := mergeChain(d.mo, into, from); err != nil {
		return fmt.Errorf("M_O: %w", err)
	}
	d.tracks.MergeState(into, from)
	for _, bySensor := range d.profiles {
		src, ok := bySensor[from]
		if !ok {
			continue
		}
		dst, ok := bySensor[into]
		if !ok {
			bySensor[into] = src
		} else {
			for i := range dst {
				if i < len(src) {
					dst[i].Merge(src[i])
				}
			}
		}
		delete(bySensor, from)
	}
	return nil
}

// mergeOnline merges hidden and symbol identities if the estimator knows
// them; unknown IDs are fine (the estimator never saw that state).
func mergeOnline(o *hmm.Online, into, from int) error {
	if containsInt(o.HiddenIDs(), from) {
		if !containsInt(o.HiddenIDs(), into) {
			o.EnsureHidden(into)
		}
		if err := o.MergeHidden(into, from); err != nil {
			return err
		}
	}
	if containsInt(o.SymbolIDs(), from) {
		if !containsInt(o.SymbolIDs(), into) {
			o.EnsureSymbol(into)
		}
		if err := o.MergeSymbol(into, from); err != nil {
			return err
		}
	}
	return nil
}

func mergeChain(c *markov.Chain, into, from int) error {
	if !containsInt(c.IDs(), from) {
		return nil
	}
	c.Ensure(into)
	return c.Merge(into, from)
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// sensorMeans groups the window's readings by sensor and returns the sensor
// IDs (ascending) with their mean observation vectors. Both returned slices
// are backed by the detector's scratch space and are valid until the next
// step.
func (d *Detector) sensorMeans(readings []sensor.Reading) ([]int, []vecmat.Vector, error) {
	sc := &d.scratch
	if sc.slot == nil {
		sc.slot = make(map[int]int)
	} else {
		clear(sc.slot)
	}
	sc.ids = sc.ids[:0]
	sc.counts = sc.counts[:0]
	for _, r := range readings {
		if len(r.Values) != d.cfg.Dim {
			return nil, nil, fmt.Errorf("core: reading from sensor %d has dimension %d, want %d",
				r.Sensor, len(r.Values), d.cfg.Dim)
		}
		i, ok := sc.slot[r.Sensor]
		if !ok {
			i = len(sc.ids)
			sc.slot[r.Sensor] = i
			if i == len(sc.sums) {
				sc.sums = append(sc.sums, vecmat.NewVector(d.cfg.Dim))
			}
			sum := sc.sums[i]
			for k := range sum {
				sum[k] = 0
			}
			sc.ids = append(sc.ids, r.Sensor)
			sc.counts = append(sc.counts, 0)
		}
		if err := sc.sums[i].AddInPlace(r.Values); err != nil {
			return nil, nil, err
		}
		sc.counts[i]++
	}
	// Sort IDs ascending; slot still maps each ID to its accumulation row,
	// so the points slice is rebuilt in sorted order from the (unsorted)
	// sum rows, scaling each row into a mean in place.
	slices.Sort(sc.ids)
	sc.points = sc.points[:0]
	for _, id := range sc.ids {
		i := sc.slot[id]
		sum := sc.sums[i]
		inv := 1 / float64(sc.counts[i])
		for k := range sum {
			sum[k] *= inv
		}
		sc.points = append(sc.points, sum)
	}
	return sc.ids, sc.points, nil
}

// meanInto computes the component-wise mean of vs into the scratch overall
// vector (Eq. (2)'s network view) without allocating.
func (d *Detector) meanInto(vs []vecmat.Vector) (vecmat.Vector, error) {
	sc := &d.scratch
	if len(sc.overall) != d.cfg.Dim {
		sc.overall = vecmat.NewVector(d.cfg.Dim)
	}
	out := sc.overall
	for k := range out {
		out[k] = 0
	}
	if len(vs) == 0 {
		return nil, errors.New("core: mean of zero observations")
	}
	for _, v := range vs {
		if err := out.AddInPlace(v); err != nil {
			return nil, err
		}
	}
	inv := 1 / float64(len(vs))
	for k := range out {
		out[k] *= inv
	}
	return out, nil
}

// majorityState returns the state ID backing the largest group of mapped
// observations (ties break toward the smaller ID for determinism). The tally
// map is scratch, reused across windows.
func (d *Detector) majorityState(mapped []int) int {
	sc := &d.scratch
	if sc.states == nil {
		sc.states = make(map[int]int)
	} else {
		clear(sc.states)
	}
	for _, id := range mapped {
		sc.states[id]++
	}
	best, bestCount := 0, -1
	for id, c := range sc.states {
		if c > bestCount || (c == bestCount && id < best) {
			best, bestCount = id, c
		}
	}
	return best
}

// Stats is a cheap snapshot of the detector's internal counters — the
// numbers a caller can poll between windows without paying for a full
// Report (which runs the structural classifier).
type Stats struct {
	// Steps and SkippedWindows count processed and quorum-dropped windows.
	Steps, SkippedWindows int
	// TracksOpened and TracksClosed count error/attack track lifecycle
	// events; OpenTracks is the number open right now.
	TracksOpened, TracksClosed, OpenTracks int
	// QuarantinedSensors is the number of sensors currently excluded from
	// the observable estimate.
	QuarantinedSensors int
	// ModelStates is the current model-state count; StateSpawns and
	// StateMerges count structural changes since construction.
	ModelStates, StateSpawns, StateMerges int
	// SensorsSeen is the number of distinct sensors ever observed.
	SensorsSeen int
}

// Stats returns a snapshot of the detector's internal counters.
func (d *Detector) Stats() Stats {
	return Stats{
		Steps:              d.steps,
		SkippedWindows:     d.skipped,
		TracksOpened:       d.tracks.Opened(),
		TracksClosed:       d.tracks.ClosedCount(),
		OpenTracks:         d.tracks.OpenCount(),
		QuarantinedSensors: len(d.quarantined),
		ModelStates:        d.states.Len(),
		StateSpawns:        d.states.SpawnCount(),
		StateMerges:        d.states.MergeCount(),
		SensorsSeen:        len(d.seen),
	}
}

// Steps returns the number of non-skipped windows processed.
func (d *Detector) Steps() int { return d.steps }

// SkippedWindows returns the number of windows dropped for lacking a sensor
// quorum.
func (d *Detector) SkippedWindows() int { return d.skipped }

// States returns the current model states.
func (d *Detector) States() []cluster.State { return d.states.States() }

// StateAttributes returns the attribute vector of every current model state,
// keyed by state ID.
func (d *Detector) StateAttributes() map[int]vecmat.Vector {
	out := make(map[int]vecmat.Vector)
	for _, s := range d.states.States() {
		out[s.ID] = s.Centroid
	}
	return out
}

// ModelCO returns an ID-ordered snapshot of the M_CO estimator.
func (d *Detector) ModelCO() hmm.Snapshot { return d.mco.Snapshot() }

// ModelCE returns an ID-ordered snapshot of a sensor's M_CE estimator.
func (d *Detector) ModelCE(sensorID int) (hmm.Snapshot, bool) {
	est, ok := d.mce[sensorID]
	if !ok {
		return hmm.Snapshot{}, false
	}
	return est.Snapshot(), true
}

// TrackedSensors returns every sensor that ever had an error/attack track,
// in ascending order.
func (d *Detector) TrackedSensors() []int {
	ids := make([]int, 0, len(d.mce))
	for id := range d.mce {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// CorrectChain returns the Markov model M_C of the correct environment
// dynamics (step 5 of the methodology).
func (d *Detector) CorrectChain() *markov.Chain { return d.mc }

// ObservableChain returns the Markov model M_O of the observable dynamics.
func (d *Detector) ObservableChain() *markov.Chain { return d.mo }

// AlarmStats returns the per-sensor raw/filtered alarm statistics.
func (d *Detector) AlarmStats() *alarm.Stats { return d.stats }

// Tracks returns the track manager (open and closed tracks).
func (d *Detector) Tracks() *track.Manager { return d.tracks }
