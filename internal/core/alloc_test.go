package core

import (
	"testing"

	"sensorguard/internal/network"
)

// TestStepZeroAllocSteadyState pins the hot-path contract: once the
// detector's scratch space has grown to the window's working-set size, the
// bare (uninstrumented) Step allocates nothing. A regression here silently
// re-taxes every window of every deployment, so it fails loudly instead.
func TestStepZeroAllocSteadyState(t *testing.T) {
	d, err := NewDetector(DefaultConfig(keyStates()))
	if err != nil {
		t.Fatal(err)
	}
	points := keyStates()
	wins := make([]network.Window, 4)
	for i := range wins {
		wins[i] = uniformWindow(i, 10, points[i])
	}
	idx := 0
	step := func() {
		w := wins[idx%4]
		w.Index = idx
		if _, err := d.Step(w); err != nil {
			t.Fatal(err)
		}
		idx++
	}
	// Warm up: grow scratch buffers, visit every key state, let the
	// cluster set settle.
	for i := 0; i < 128; i++ {
		step()
	}
	if got := testing.AllocsPerRun(500, step); got != 0 {
		t.Fatalf("steady-state Step allocates %v times per window, want 0", got)
	}
}

// TestStepResultCloneIndependent pins that Clone detaches a result from the
// detector's scratch space: stepping again must not mutate the clone.
func TestStepResultCloneIndependent(t *testing.T) {
	d, err := NewDetector(DefaultConfig(keyStates()))
	if err != nil {
		t.Fatal(err)
	}
	points := keyStates()
	res, err := d.Step(uniformWindow(0, 10, points[0]))
	if err != nil {
		t.Fatal(err)
	}
	borrowed := res.Sensors
	clone := res.Clone()
	want := make(map[int]SensorStep, len(clone.Sensors))
	for id, s := range clone.Sensors {
		want[id] = s
	}
	// Step a window with a different sensor population; the borrowed map
	// is rewritten in place, the clone must not move.
	if _, err := d.Step(uniformWindow(1, 4, points[1])); err != nil {
		t.Fatal(err)
	}
	if len(borrowed) == len(want) {
		t.Fatalf("test is vacuous: borrowed map unchanged (len %d)", len(borrowed))
	}
	if len(clone.Sensors) != len(want) {
		t.Fatalf("clone mutated by later Step: len %d, want %d", len(clone.Sensors), len(want))
	}
	for id, s := range want {
		if clone.Sensors[id] != s {
			t.Fatalf("clone entry %d mutated: %+v != %+v", id, clone.Sensors[id], s)
		}
	}
}
