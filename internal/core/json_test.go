package core

import (
	"encoding/json"
	"testing"

	"sensorguard/internal/vecmat"
)

func TestReportJSONRoundTrip(t *testing.T) {
	d := mustDetector(t)
	for i := 0; i < 30; i++ {
		bySensor := make([]vecmat.Vector, 10)
		for s := 0; s < 9; s++ {
			bySensor[s] = keyStates()[i%4].Clone()
		}
		bySensor[9] = vecmat.Vector{45, 20}
		if _, err := d.Step(window(i, bySensor)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := d.Report()
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.MarshalIndentJSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded ReportJSON
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if decoded.Detected != rep.Detected {
		t.Errorf("detected = %v, want %v", decoded.Detected, rep.Detected)
	}
	if decoded.Overall != rep.Overall().String() {
		t.Errorf("overall = %q", decoded.Overall)
	}
	if decoded.Network.Kind != rep.Network.Kind.String() {
		t.Errorf("network kind = %q", decoded.Network.Kind)
	}
	if len(decoded.States) != len(rep.States) {
		t.Errorf("states = %d, want %d", len(decoded.States), len(rep.States))
	}
	// Sensor entries are sorted by ID.
	for i := 1; i < len(decoded.Sensors); i++ {
		if decoded.Sensors[i].Sensor < decoded.Sensors[i-1].Sensor {
			t.Error("sensor entries not sorted")
		}
	}
}

func TestReportJSONStuckStateAttrs(t *testing.T) {
	d := mustDetector(t)
	// Two alternating hidden states with a persistently stuck outlier, so
	// the stuck-at diagnosis (and its state attributes) appears.
	for i := 0; i < 40; i++ {
		bySensor := make([]vecmat.Vector, 10)
		for s := 0; s < 9; s++ {
			bySensor[s] = keyStates()[i%2].Clone()
		}
		bySensor[9] = vecmat.Vector{45, 20}
		if _, err := d.Step(window(i, bySensor)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := d.Report()
	if err != nil {
		t.Fatal(err)
	}
	js := rep.JSON()
	found := false
	for _, s := range js.Sensors {
		if s.Sensor == 9 && s.Kind == "stuck-at" {
			found = true
			if len(s.StuckState) != 2 {
				t.Errorf("stuck state attrs = %v", s.StuckState)
			}
		}
	}
	if !found {
		t.Errorf("stuck sensor missing from JSON: %+v", js.Sensors)
	}
}
