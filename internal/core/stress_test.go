package core

import (
	"testing"
	"time"

	"sensorguard/internal/attack"
	"sensorguard/internal/classify"
	"sensorguard/internal/env"
	"sensorguard/internal/fault"
	"sensorguard/internal/gdi"
	"sensorguard/internal/network"
	"sensorguard/internal/sensor"
	"sensorguard/internal/vecmat"
)

// TestScenarioFaultAndAttackTogether is the hardest realistic case: sensor 6
// degrades to a stuck value while, independently, a compromised third mounts
// a nightly creation attack. The detector must report the attack at the
// network level AND still type the stuck sensor.
func TestScenarioFaultAndAttackTogether(t *testing.T) {
	drop, err := fault.NewIntermittent(0.7, 99)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.NewPlan(
		fault.Schedule{
			Sensor:   6,
			Injector: fault.DecayToStuck{Floor: vecmat.Vector{15, 1}, TimeConstant: 12 * time.Hour},
			Start:    2 * 24 * time.Hour,
		},
		fault.Schedule{Sensor: 6, Injector: drop, Start: 2 * 24 * time.Hour},
	)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := attack.NewAdversary([]int{0, 1, 2}, gdi.Ranges())
	if err != nil {
		t.Fatal(err)
	}
	gate, err := attack.PeriodicGate(24*time.Hour, 0, 3*time.Hour+30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	strat := &attack.Gated{
		Inner: &attack.DynamicCreation{
			Adversary: adv,
			Target:    vecmat.Vector{14, 66},
			Start:     4 * 24 * time.Hour,
		},
		Active: gate,
	}
	det, rep := runScenario(t, scenarioDays+7,
		network.WithFaults(plan), network.WithAttack(strat))

	if !rep.Detected {
		t.Fatal("nothing detected")
	}
	if rep.Network.Kind != classify.KindDynamicCreation {
		t.Errorf("network kind = %v, want dynamic-creation despite the concurrent fault\nB^CO:\n%v",
			rep.Network.Kind, det.ModelCO().B)
	}
	diag, ok := rep.Sensors[6]
	if !ok {
		t.Fatalf("no diagnosis for sensor 6; tracked %v", det.TrackedSensors())
	}
	if diag.Kind != classify.KindStuckAt {
		t.Errorf("sensor 6 kind = %v, want stuck-at despite the concurrent attack", diag.Kind)
	}
}

// TestScenarioLateJoiningSensor verifies dynamic membership: a sensor that
// starts reporting mid-deployment is absorbed without disturbance.
func TestScenarioLateJoiningSensor(t *testing.T) {
	cfg := gdi.DefaultGenerateConfig()
	cfg.Days = 10
	tr, err := gdi.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Clone sensor 0's readings into a new sensor 42 that only exists
	// from day 5 on (with a slight time shift so the readings differ).
	var extra []sensor.Reading
	for _, r := range tr.Readings {
		if r.Sensor == 0 && r.Time >= 5*24*time.Hour {
			c := r.Clone()
			c.Sensor = 42
			extra = append(extra, c)
		}
	}
	all := append(append([]sensor.Reading{}, tr.Readings...), extra...)
	network.SortReadings(all)

	det, err := NewDetector(DefaultConfig(keyStates()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.ProcessTrace(all); err != nil {
		t.Fatal(err)
	}
	rep, err := det.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Network.Kind != classify.KindNone {
		t.Errorf("late joiner triggered %v", rep.Network.Kind)
	}
	// The late joiner mirrors a healthy sensor: it must not be flagged.
	if d, ok := rep.Sensors[42]; ok && d.Kind.IsError() && d.Kind != classify.KindUnknownError {
		t.Errorf("late joiner diagnosed %v", d.Kind)
	}
	stats := det.AlarmStats()
	if stats.Steps(42) == 0 {
		t.Error("late joiner never observed")
	}
	if rate := stats.RawRate(42); rate > 0.1 {
		t.Errorf("late joiner raw alarm rate = %v", rate)
	}
}

// TestScenarioWeakLinkSensor verifies that a sensor behind a very lossy
// link — delivering only ~15% of its messages — neither destabilises the
// models nor gets falsely diagnosed.
func TestScenarioWeakLinkSensor(t *testing.T) {
	cfg := gdi.DefaultGenerateConfig()
	cfg.Days = 10
	tr, err := generateWithWeakLink(cfg, 5, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(DefaultConfig(keyStates()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.ProcessTrace(tr.Readings); err != nil {
		t.Fatal(err)
	}
	rep, err := det.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Network.Kind != classify.KindNone {
		t.Errorf("weak link produced network diagnosis %v", rep.Network.Kind)
	}
	if d, ok := rep.Sensors[5]; ok && d.Kind.IsError() && d.Kind != classify.KindUnknownError {
		t.Errorf("weak-link sensor diagnosed %v", d.Kind)
	}
	if det.AlarmStats().Steps(5) == 0 {
		t.Error("weak-link sensor never heard from at all")
	}
}

// generateWithWeakLink builds a GDI trace where one sensor's link drops the
// given fraction of its messages.
func generateWithWeakLink(cfg gdi.GenerateConfig, sensorID int, loss float64) (gdi.Trace, error) {
	field, err := env.GDIProfile(cfg.Seed, cfg.DriftAmp)
	if err != nil {
		return gdi.Trace{}, err
	}
	dep, err := network.New(network.Config{
		Sensors:      cfg.Sensors,
		SamplePeriod: cfg.SamplePeriod,
		Noise:        cfg.Noise,
		Ranges:       gdi.Ranges(),
		Link: network.LinkConfig{
			LossProb:      cfg.LossProb,
			MalformProb:   cfg.MalformProb,
			PerSensorLoss: map[int]float64{sensorID: loss},
		},
		Seed: cfg.Seed,
	}, field)
	if err != nil {
		return gdi.Trace{}, err
	}
	tr := gdi.Trace{Attributes: gdi.Attributes}
	end := time.Duration(cfg.Days) * 24 * time.Hour
	err = dep.Run(0, end, func(_ time.Duration, msgs []sensor.Reading) error {
		tr.Readings = append(tr.Readings, msgs...)
		return nil
	})
	return tr, err
}

// TestScenarioReplayAttack probes the methodology with an attack outside the
// paper's model: the compromised third replays its own readings 12 hours
// stale. Every injected value is individually plausible, but the temporal
// alignment is broken — at night the malicious sensors report yesterday
// afternoon. The displaced observable mean changes direction with the cycle
// phase, which the structural classifier reads as a state-warping attack
// (the exact kind depends on which signatures dominate); what matters is
// that it is detected and NEVER mistaken for an accidental error.
func TestScenarioReplayAttack(t *testing.T) {
	adv, err := attack.NewAdversary([]int{0, 1, 2}, gdi.Ranges())
	if err != nil {
		t.Fatal(err)
	}
	strat := &attack.Replay{
		Adversary: adv,
		Delay:     12 * time.Hour,
		Start:     3 * 24 * time.Hour,
	}
	det, rep := runScenario(t, scenarioDays+7, network.WithAttack(strat))

	if !rep.Detected {
		t.Fatal("replay attack not detected")
	}
	if !rep.Network.Kind.IsAttack() {
		t.Errorf("replay attack read as %v, want an attack kind\nB^CO:\n%v",
			rep.Network.Kind, det.ModelCO().B)
	}
	// The compromised sensors must be under track, and none of them may
	// receive a clean structured-error diagnosis (which would quarantine
	// them and hide the attack).
	for _, id := range []int{0, 1, 2} {
		if d, ok := rep.Sensors[id]; ok {
			switch d.Kind {
			case classify.KindStuckAt, classify.KindCalibration, classify.KindAdditive:
				t.Errorf("malicious sensor %d mis-typed as %v", id, d.Kind)
			}
		}
	}
	if got := det.Quarantined(); len(got) != 0 {
		t.Errorf("malicious sensors quarantined: %v (coordination rule should withhold)", got)
	}
}

// TestScenarioMixedAttackCore runs the combination attack end to end at the
// core level (the exp harness covers it at experiment scale).
func TestScenarioMixedAttackCore(t *testing.T) {
	adv, err := attack.NewAdversary([]int{0, 1, 2}, gdi.Ranges())
	if err != nil {
		t.Fatal(err)
	}
	gate, err := attack.PeriodicGate(24*time.Hour, 0, 3*time.Hour+30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	strat := &attack.Mixed{Strategies: []attack.Strategy{
		&attack.DynamicDeletion{
			Adversary:   adv,
			Target:      vecmat.Vector{31, 56},
			ReplaceWith: vecmat.Vector{24, 70},
			Radius:      6,
			Start:       3 * 24 * time.Hour,
		},
		&attack.Gated{
			Inner: &attack.DynamicCreation{
				Adversary: adv,
				Target:    vecmat.Vector{14, 66},
				Start:     4 * 24 * time.Hour,
			},
			Active: gate,
		},
	}}
	det, rep := runScenario(t, scenarioDays+7, network.WithAttack(strat))
	if rep.Network.Kind != classify.KindMixed {
		t.Errorf("network kind = %v, want mixed\nB^CO:\n%v", rep.Network.Kind, det.ModelCO().B)
	}
}
