package core

import (
	"testing"

	"sensorguard/internal/network"
	"sensorguard/internal/obs"
	"sensorguard/internal/vecmat"
)

// BenchmarkStep measures single-window pipeline latency — the quantity that
// determines how large a deployment one collector can serve. One window of
// 10 sensors × 12 samples.

// benchWindows prebuilds one window per key state so the timed loops below
// measure Step alone, not fixture construction. Callers stamp the real
// ordinal onto a copy of the ring entry (a stack copy, no allocation).
func benchWindows(n int) []network.Window {
	points := keyStates()
	wins := make([]network.Window, len(points))
	for i := range wins {
		wins[i] = uniformWindow(i, n, points[i])
	}
	return wins
}

func BenchmarkStep(b *testing.B) {
	d, err := NewDetector(DefaultConfig(keyStates()))
	if err != nil {
		b.Fatal(err)
	}
	wins := benchWindows(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := wins[i%4]
		w.Index = i
		if _, err := d.Step(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepInstrumented is BenchmarkStep with a full observer attached
// (metrics registry + NopSink event stream). Comparing against
// BenchmarkStep measures the observability overhead, which must stay within
// noise of the uninstrumented baseline.
func BenchmarkStepInstrumented(b *testing.B) {
	cfg := DefaultConfig(keyStates())
	cfg.Observer = &obs.Observer{Metrics: obs.NewRegistry(), Sink: obs.NopSink{}}
	d, err := NewDetector(cfg)
	if err != nil {
		b.Fatal(err)
	}
	wins := benchWindows(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := wins[i%4]
		w.Index = i
		if _, err := d.Step(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepHealthTracker is BenchmarkStep with a per-deployment health
// tracker attached — the always-on fleet configuration. Comparing against
// BenchmarkStep gives the drift-telemetry overhead, which the health tier
// budgets at < 5% (see TestStepHealthOverhead).
func BenchmarkStepHealthTracker(b *testing.B) {
	d, err := NewDetector(DefaultConfig(keyStates()))
	if err != nil {
		b.Fatal(err)
	}
	d.SetHealthTracker(obs.NewHealthTracker(obs.HealthConfig{}))
	wins := benchWindows(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := wins[i%4]
		w.Index = i
		if _, err := d.Step(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepWithTrackedSensor adds an alarming outlier so the alarm,
// track, M_CE, and profile paths are all exercised.
func BenchmarkStepWithTrackedSensor(b *testing.B) {
	d, err := NewDetector(DefaultConfig(keyStates()))
	if err != nil {
		b.Fatal(err)
	}
	outlier := make([][]vecmat.Vector, 4)
	for v := range outlier {
		bySensor := make([]vecmat.Vector, 10)
		for s := 0; s < 9; s++ {
			bySensor[s] = keyStates()[v]
		}
		bySensor[9] = vecmat.Vector{45, 20}
		outlier[v] = bySensor
	}
	wins := make([]network.Window, 4)
	for v := range wins {
		wins[v] = window(v, outlier[v])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := wins[i%4]
		w.Index = i
		if _, err := d.Step(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepTraced is BenchmarkStep with a tracer attached and every
// window carrying a freshly minted sampled context — the worst case, where
// each window emits a root span plus five stage spans. Comparing against
// BenchmarkStep gives the sampled-on tracing overhead for EXPERIMENTS.md.
func BenchmarkStepTraced(b *testing.B) {
	cfg := DefaultConfig(keyStates())
	cfg.Tracer = obs.NewTracer(obs.TracerConfig{SampleEvery: 1})
	d, err := NewDetector(cfg)
	if err != nil {
		b.Fatal(err)
	}
	wins := benchWindows(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := wins[i%4]
		w.Index = i
		w.Trace = obs.NewRootContext()
		if _, err := d.Step(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepTracerIdle has a tracer attached but no sampled context on
// any window — the common case under 1/N sampling. It must track
// BenchmarkStep within noise: an idle tracer costs one nil check.
func BenchmarkStepTracerIdle(b *testing.B) {
	cfg := DefaultConfig(keyStates())
	cfg.Tracer = obs.NewTracer(obs.TracerConfig{SampleEvery: 1})
	d, err := NewDetector(cfg)
	if err != nil {
		b.Fatal(err)
	}
	wins := benchWindows(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := wins[i%4]
		w.Index = i
		if _, err := d.Step(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepWithDecisions measures the decision-record path: every window
// assembles a full DecisionRecord (including the B^CO structural evidence)
// into a ring sink.
func BenchmarkStepWithDecisions(b *testing.B) {
	cfg := DefaultConfig(keyStates())
	cfg.Decisions = NewDecisionRing(256)
	d, err := NewDetector(cfg)
	if err != nil {
		b.Fatal(err)
	}
	wins := benchWindows(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := wins[i%4]
		w.Index = i
		if _, err := d.Step(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReport measures the full structural classification.
func BenchmarkReport(b *testing.B) {
	d, err := NewDetector(DefaultConfig(keyStates()))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		bySensor := make([]vecmat.Vector, 10)
		for s := 0; s < 9; s++ {
			bySensor[s] = keyStates()[i%4]
		}
		bySensor[9] = vecmat.Vector{45, 20}
		if _, err := d.Step(window(i, bySensor)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Report(); err != nil {
			b.Fatal(err)
		}
	}
}
