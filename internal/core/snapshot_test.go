package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"sensorguard/internal/alarm"
	"sensorguard/internal/fault"
	"sensorguard/internal/gdi"
	"sensorguard/internal/network"
	"sensorguard/internal/vecmat"
)

// snapshotTrace builds a windowed GDI trace with a stuck-at fault on sensor 6
// and an additive fault on sensor 3, so a mid-stream snapshot carries open
// tracks, per-sensor M_CE estimators, error profiles, filter evidence, and
// (late in the stream) quarantined sensors.
func snapshotTrace(t *testing.T, days int) []network.Window {
	t.Helper()
	cfg := gdi.DefaultGenerateConfig()
	cfg.Days = days
	drop, err := fault.NewIntermittent(0.7, 99)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.NewPlan(
		fault.Schedule{
			Sensor:   6,
			Injector: fault.DecayToStuck{Floor: vecmat.Vector{15, 1}, TimeConstant: 12 * time.Hour},
			Start:    2 * 24 * time.Hour,
		},
		fault.Schedule{Sensor: 6, Injector: drop, Start: 2 * 24 * time.Hour},
		fault.Schedule{
			Sensor:   3,
			Injector: fault.Additive{Offsets: vecmat.Vector{9, 5}},
			Start:    24 * time.Hour,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gdi.Generate(cfg, network.WithFaults(plan))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	windows, err := network.WindowAll(tr.Readings, DefaultConfig(nil).Window)
	if err != nil {
		t.Fatalf("window: %v", err)
	}
	return windows
}

// stepAll drives every window through the detector, returning the per-window
// results.
func stepAll(t *testing.T, d *Detector, ws []network.Window) []StepResult {
	t.Helper()
	out := make([]StepResult, 0, len(ws))
	for _, w := range ws {
		res, err := d.Step(w)
		if err != nil {
			t.Fatalf("step %d: %v", w.Index, err)
		}
		out = append(out, res.Clone())
	}
	return out
}

// roundTrip snapshots d, pushes the snapshot through JSON (the on-disk
// representation), and restores a fresh detector from it.
func roundTrip(t *testing.T, d *Detector, cfg Config) *Detector {
	t.Helper()
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	cfg.InitialStates = nil // restored detectors must not need seeds
	restored, err := RestoreDetector(cfg, &decoded)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	return restored
}

func reportBytes(t *testing.T, d *Detector) []byte {
	t.Helper()
	rep, err := d.Report()
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	raw, err := rep.MarshalIndentJSON()
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return raw
}

// TestSnapshotExactEquivalence is the tentpole guarantee: a detector restored
// from a JSON-round-tripped snapshot taken mid-stream produces byte-identical
// per-window results and a byte-identical final report on the remaining
// stream. The snapshot is taken twice (a third and two thirds in) so the
// restore-of-a-restore path is covered too.
func TestSnapshotExactEquivalence(t *testing.T) {
	windows := snapshotTrace(t, 12)
	cfg := DefaultConfig(keyStates())

	reference, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSteps := stepAll(t, reference, windows)

	subject, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cutA, cutB := len(windows)/3, 2*len(windows)/3
	gotSteps := stepAll(t, subject, windows[:cutA])
	subject = roundTrip(t, subject, cfg)
	gotSteps = append(gotSteps, stepAll(t, subject, windows[cutA:cutB])...)
	subject = roundTrip(t, subject, cfg)
	gotSteps = append(gotSteps, stepAll(t, subject, windows[cutB:])...)

	if len(gotSteps) != len(wantSteps) {
		t.Fatalf("step count %d, want %d", len(gotSteps), len(wantSteps))
	}
	for i := range wantSteps {
		if !reflect.DeepEqual(gotSteps[i], wantSteps[i]) {
			t.Fatalf("window %d diverged after restore:\ngot  %+v\nwant %+v", i, gotSteps[i], wantSteps[i])
		}
	}

	want := reportBytes(t, reference)
	got := reportBytes(t, subject)
	if !bytes.Equal(got, want) {
		t.Fatalf("restored report differs from uninterrupted run:\ngot:\n%s\nwant:\n%s", got, want)
	}

	if !reflect.DeepEqual(subject.Stats(), reference.Stats()) {
		t.Errorf("stats diverged: got %+v want %+v", subject.Stats(), reference.Stats())
	}
	if !reflect.DeepEqual(subject.Quarantined(), reference.Quarantined()) {
		t.Errorf("quarantine diverged: got %v want %v", subject.Quarantined(), reference.Quarantined())
	}
}

// TestSnapshotEquivalenceSequentialFilters repeats the equivalence check with
// the SPRT and CUSUM alarm filters, whose evidence accumulators live in the
// filter rather than the ring buffer.
func TestSnapshotEquivalenceSequentialFilters(t *testing.T) {
	factories := map[string]func() (alarm.Filter, error){
		"sprt":  func() (alarm.Filter, error) { return alarm.NewSPRTFilter(0.05, 0.5, 0.01, 0.01) },
		"cusum": func() (alarm.Filter, error) { return alarm.NewCUSUMFilter(0.05, 0.5, 4, 6) },
	}
	windows := snapshotTrace(t, 8)
	for name, factory := range factories {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig(keyStates())
			cfg.FilterFactory = factory

			reference, err := NewDetector(cfg)
			if err != nil {
				t.Fatal(err)
			}
			stepAll(t, reference, windows)

			subject, err := NewDetector(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cut := len(windows) / 2
			stepAll(t, subject, windows[:cut])
			subject = roundTrip(t, subject, cfg)
			stepAll(t, subject, windows[cut:])

			want := reportBytes(t, reference)
			got := reportBytes(t, subject)
			if !bytes.Equal(got, want) {
				t.Fatalf("restored report differs:\ngot:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestSnapshotMarshalDeterministic pins down that the same detector state
// always serialises to the same bytes (encoding/json sorts map keys), which
// the fleet's checkpoint dedup relies on.
func TestSnapshotMarshalDeterministic(t *testing.T) {
	windows := snapshotTrace(t, 6)
	cfg := DefaultConfig(keyStates())
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepAll(t, d, windows)
	snapA, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rawA, err := json.Marshal(snapA)
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := json.Marshal(snapB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawA, rawB) {
		t.Fatal("two snapshots of the same state serialise differently")
	}
}

// TestRestoreRejectsDamage feeds RestoreDetector systematically damaged
// snapshots; every one must fail cleanly (no panic, no partial detector).
func TestRestoreRejectsDamage(t *testing.T) {
	windows := snapshotTrace(t, 6)
	cfg := DefaultConfig(keyStates())
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepAll(t, d, windows)
	good, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}

	damage := map[string]func(*Snapshot){
		"version":            func(s *Snapshot) { s.Version = 99 },
		"dim":                func(s *Snapshot) { s.Dim = 7 },
		"cluster-dup-id":     func(s *Snapshot) { s.Cluster.States[1].ID = s.Cluster.States[0].ID },
		"cluster-bad-dim":    func(s *Snapshot) { s.Cluster.States[0].Centroid = vecmat.Vector{1} },
		"cluster-next-id":    func(s *Snapshot) { s.Cluster.NextID = 0 },
		"mco-ragged-matrix":  func(s *Snapshot) { s.MCO.A[0] = s.MCO.A[0][:1] },
		"mco-missing-row":    func(s *Snapshot) { s.MCO.A = s.MCO.A[:1] },
		"mco-dup-hidden":     func(s *Snapshot) { s.MCO.HiddenIDs[1] = s.MCO.HiddenIDs[0] },
		"mco-unknown-prev":   func(s *Snapshot) { s.MCO.Prev = -99 },
		"mc-bad-shape":       func(s *Snapshot) { s.MC.P = s.MC.P[:1] },
		"filter-kind":        func(s *Snapshot) { s.Filter = json.RawMessage(`{"kind":"sprt"}`) },
		"filter-params":      func(s *Snapshot) { s.Filter = json.RawMessage(`{"kind":"k-of-n","k":1,"n":2}`) },
		"filter-garbage":     func(s *Snapshot) { s.Filter = json.RawMessage(`{`) },
		"stats-inconsistent": func(s *Snapshot) { s.AlarmStats.Sensors[0].Raw = s.AlarmStats.Sensors[0].Steps + 1 },
		"track-misaligned": func(s *Snapshot) {
			if len(s.Tracks.Active) > 0 {
				s.Tracks.Active[0].Hidden = s.Tracks.Active[0].Hidden[:0]
			} else {
				s.Tracks.Closed[0].Hidden = s.Tracks.Closed[0].Hidden[:0]
			}
		},
		"track-opened-count": func(s *Snapshot) { s.Tracks.Opened = -1 },
		"profile-bad-width": func(s *Snapshot) {
			for _, byHidden := range s.Profiles {
				for h, rs := range byHidden {
					byHidden[h] = rs[:1]
					return
				}
			}
		},
	}
	for name, corrupt := range damage {
		t.Run(name, func(t *testing.T) {
			var snap Snapshot
			if err := json.Unmarshal(raw, &snap); err != nil {
				t.Fatal(err)
			}
			corrupt(&snap)
			restoreCfg := cfg
			restoreCfg.InitialStates = nil
			if _, err := RestoreDetector(restoreCfg, &snap); err == nil {
				t.Fatalf("damaged snapshot (%s) restored without error", name)
			}
		})
	}
}

// TestRestoreWithoutSeeds pins down that restore does not require
// InitialStates while NewDetector still does.
func TestRestoreWithoutSeeds(t *testing.T) {
	cfg := DefaultConfig(nil)
	if _, err := NewDetector(cfg); err == nil {
		t.Fatal("NewDetector accepted a config without initial states")
	}
	windows := snapshotTrace(t, 4)
	seeded := DefaultConfig(keyStates())
	d, err := NewDetector(seeded)
	if err != nil {
		t.Fatal(err)
	}
	stepAll(t, d, windows)
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreDetector(cfg, snap); err != nil {
		t.Fatalf("restore without seeds: %v", err)
	}
}
