package core

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"sensorguard/internal/gdi"
	"sensorguard/internal/network"
)

// TestSharedConcurrentSnapshots steps windows through a Shared detector while
// snapshot callers hammer it from other goroutines — the serve-mode access
// pattern — and checks the outcome matches a plain sequential run.
func TestSharedConcurrentSnapshots(t *testing.T) {
	cfg := gdi.DefaultGenerateConfig()
	cfg.Days = 3
	tr, err := gdi.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	windows, err := network.WindowAll(tr.Readings, time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	plain, err := NewDetector(DefaultConfig(keyStates()))
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(DefaultConfig(keyStates()))
	if err != nil {
		t.Fatal(err)
	}
	shared := NewShared(det)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = shared.Stats()
				_, _ = shared.Report()
				_ = shared.Quarantined()
				_ = shared.StateAttributes()
				_, _ = shared.Diagnose(0)
			}
		}()
	}

	for _, w := range windows {
		if _, err := plain.Step(w); err != nil {
			t.Fatal(err)
		}
		if _, err := shared.Step(w); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	want, err := plain.Report()
	if err != nil {
		t.Fatal(err)
	}
	got, err := shared.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("concurrent snapshots perturbed the detector: reports differ from a sequential run")
	}
	if got, want := shared.Stats(), plain.Stats(); !reflect.DeepEqual(got, want) {
		t.Errorf("stats differ: %+v vs %+v", got, want)
	}
}
