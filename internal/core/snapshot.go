package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"sensorguard/internal/alarm"
	"sensorguard/internal/cluster"
	"sensorguard/internal/hmm"
	"sensorguard/internal/markov"
	runstats "sensorguard/internal/stats"
	"sensorguard/internal/track"
)

// SnapshotVersion is the current snapshot schema version. Restore rejects
// snapshots from a different version rather than guessing at field meaning.
const SnapshotVersion = 1

// Snapshot is the complete serializable state of a Detector: every piece of
// accumulated on-line learning — cluster set, B^CO, per-sensor B^CE, the
// M_C/M_O chains, alarm filter evidence, tracks, quarantine, and error
// profiles. A detector restored from a Snapshot produces byte-identical
// reports to the original on the remaining stream (the equivalence the
// snapshot tests pin down), which is what makes fleet checkpoints sound.
//
// The snapshot deliberately excludes configuration: the caller re-supplies
// the Config at restore time (checkpointed state is only meaningful under
// the parameters that produced it, and Config holds non-serializable hooks).
type Snapshot struct {
	Version int `json:"version"`
	Dim     int `json:"dim"`

	Cluster cluster.SetState        `json:"cluster"`
	MCO     hmm.OnlineState         `json:"m_co"`
	MCE     map[int]hmm.OnlineState `json:"m_ce,omitempty"`
	MC      markov.ChainState       `json:"m_c"`
	MO      markov.ChainState       `json:"m_o"`

	// Filter is the alarm filter's own serialized state (schema owned by
	// the filter implementation, see alarm.Snapshotter).
	Filter     json.RawMessage    `json:"filter"`
	AlarmStats alarm.StatsState   `json:"alarm_stats"`
	Tracks     track.ManagerState `json:"tracks"`

	Quarantined []int                                   `json:"quarantined,omitempty"`
	Seen        []int                                   `json:"seen,omitempty"`
	Profiles    map[int]map[int][]runstats.RunningState `json:"profiles,omitempty"`

	Steps   int `json:"steps"`
	Skipped int `json:"skipped"`
}

// Snapshot exports the detector's complete state. It fails only when the
// configured alarm filter does not implement alarm.Snapshotter (custom
// FilterFactory filters must, if the deployment is to be checkpointed).
func (d *Detector) Snapshot() (*Snapshot, error) {
	snapper, ok := d.filter.(alarm.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("core: alarm filter %T does not support state export", d.filter)
	}
	filterState, err := snapper.ExportState()
	if err != nil {
		return nil, fmt.Errorf("core: export filter state: %w", err)
	}
	snap := &Snapshot{
		Version:    SnapshotVersion,
		Dim:        d.cfg.Dim,
		Cluster:    d.states.Export(),
		MCO:        d.mco.Export(),
		MC:         d.mc.Export(),
		MO:         d.mo.Export(),
		Filter:     filterState,
		AlarmStats: d.stats.Export(),
		Tracks:     d.tracks.Export(),
		Steps:      d.steps,
		Skipped:    d.skipped,
	}
	if len(d.mce) > 0 {
		snap.MCE = make(map[int]hmm.OnlineState, len(d.mce))
		for id, est := range d.mce {
			snap.MCE[id] = est.Export()
		}
	}
	snap.Quarantined = sortedKeys(d.quarantined)
	snap.Seen = sortedKeys(d.seen)
	if len(d.profiles) > 0 {
		snap.Profiles = make(map[int]map[int][]runstats.RunningState, len(d.profiles))
		for sensorID, byHidden := range d.profiles {
			m := make(map[int][]runstats.RunningState, len(byHidden))
			for hidden, rs := range byHidden {
				states := make([]runstats.RunningState, len(rs))
				for i, r := range rs {
					states[i] = r.Export()
				}
				m[hidden] = states
			}
			snap.Profiles[sensorID] = m
		}
	}
	return snap, nil
}

// RestoreDetector rebuilds a detector from a snapshot under the given
// configuration. The configuration must carry the same parameters the
// snapshot was taken under (learning factors, filter parameters, thresholds);
// InitialStates may be empty — the model states come from the snapshot. The
// snapshot is validated defensively at every layer, so a corrupted or
// truncated checkpoint yields an error, never a half-restored detector.
func RestoreDetector(cfg Config, snap *Snapshot) (*Detector, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	if err := cfg.validate(false); err != nil {
		return nil, err
	}
	if snap.Dim != cfg.Dim {
		return nil, fmt.Errorf("core: snapshot dimension %d, config wants %d", snap.Dim, cfg.Dim)
	}

	set, err := cluster.Restore(cluster.Config{
		Alpha:           cfg.Alpha,
		MergeDistance:   cfg.MergeDistance,
		SpawnDistance:   cfg.SpawnDistance,
		CaptureDistance: cfg.CaptureDistance,
		MaxStates:       cfg.MaxStates,
	}, snap.Cluster)
	if err != nil {
		return nil, err
	}
	mco, err := hmm.RestoreOnline(cfg.Beta, cfg.Gamma, snap.MCO)
	if err != nil {
		return nil, fmt.Errorf("core: restore M_CO: %w", err)
	}
	mce := make(map[int]*hmm.Online, len(snap.MCE))
	for id, st := range snap.MCE {
		est, err := hmm.RestoreOnline(cfg.Beta, cfg.Gamma, st)
		if err != nil {
			return nil, fmt.Errorf("core: restore M_CE sensor %d: %w", id, err)
		}
		mce[id] = est
	}
	mc, err := markov.RestoreChain(cfg.Beta, snap.MC)
	if err != nil {
		return nil, fmt.Errorf("core: restore M_C: %w", err)
	}
	mo, err := markov.RestoreChain(cfg.Beta, snap.MO)
	if err != nil {
		return nil, fmt.Errorf("core: restore M_O: %w", err)
	}

	var filter alarm.Filter
	if cfg.FilterFactory != nil {
		filter, err = cfg.FilterFactory()
	} else {
		filter, err = alarm.NewKOfN(cfg.FilterK, cfg.FilterN)
	}
	if err != nil {
		return nil, err
	}
	snapper, ok := filter.(alarm.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("core: alarm filter %T does not support state restore", filter)
	}
	if err := snapper.RestoreState(snap.Filter); err != nil {
		return nil, fmt.Errorf("core: restore filter state: %w", err)
	}

	stats, err := alarm.RestoreStats(snap.AlarmStats)
	if err != nil {
		return nil, err
	}
	tracks, err := track.Restore(snap.Tracks)
	if err != nil {
		return nil, err
	}

	profiles := make(map[int]map[int][]runstats.Running, len(snap.Profiles))
	for sensorID, byHidden := range snap.Profiles {
		m := make(map[int][]runstats.Running, len(byHidden))
		for hidden, states := range byHidden {
			if len(states) != cfg.Dim {
				return nil, fmt.Errorf("core: profile for sensor %d state %d has %d attributes, want %d",
					sensorID, hidden, len(states), cfg.Dim)
			}
			rs := make([]runstats.Running, len(states))
			for i, st := range states {
				rs[i] = st.Restore()
			}
			m[hidden] = rs
		}
		profiles[sensorID] = m
	}

	return &Detector{
		cfg:         cfg,
		states:      set,
		mco:         mco,
		mce:         mce,
		mc:          mc,
		mo:          mo,
		filter:      filter,
		stats:       stats,
		tracks:      tracks,
		quarantined: boolSet(snap.Quarantined),
		seen:        boolSet(snap.Seen),
		profiles:    profiles,
		inst:        newInstruments(cfg.Observer),
		epoch:       time.Now(),
		steps:       snap.Steps,
		skipped:     snap.Skipped,
	}, nil
}

func sortedKeys(set map[int]bool) []int {
	if len(set) == 0 {
		return nil
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

func boolSet(ids []int) map[int]bool {
	out := make(map[int]bool, len(ids))
	for _, id := range ids {
		out[id] = true
	}
	return out
}
