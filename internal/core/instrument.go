package core

import (
	"sensorguard/internal/cluster"
	"sensorguard/internal/obs"
)

// instruments holds the detector's metric handles and event sink. A nil
// *instruments disables instrumentation entirely: Step takes no timestamps
// and does no extra work. When the observer carries a sink but no registry,
// the metric handles stay nil — obs metrics are nil-safe, so the update
// sites need no guards.
type instruments struct {
	sink obs.EventSink

	windows        *obs.Counter
	skipped        *obs.Counter
	readings       *obs.Counter
	rawAlarms      *obs.Counter
	filteredAlarms *obs.Counter
	tracksOpened   *obs.Counter
	tracksClosed   *obs.Counter
	stateSpawns    *obs.Counter
	stateMerges    *obs.Counter

	modelStates *obs.Gauge
	openTracks  *obs.Gauge
	quarantined *obs.Gauge
	sensorsSeen *obs.Gauge

	stageDerive   *obs.Histogram
	stageClassify *obs.Histogram
	stageMap      *obs.Histogram
	stageAlarm    *obs.Histogram
	stageHMM      *obs.Histogram
	stepSeconds   *obs.Histogram
}

// newInstruments resolves the observer's metric handles once, at detector
// construction, so Step never touches the registry map.
func newInstruments(o *obs.Observer) *instruments {
	if !o.Active() {
		return nil
	}
	ins := &instruments{sink: o.Sink}
	r := o.Metrics
	if r == nil {
		return ins
	}
	buckets := obs.LatencyBuckets()
	ins.windows = r.Counter("sensorguard_windows_total",
		"Observation windows processed (skipped windows excluded).")
	ins.skipped = r.Counter("sensorguard_windows_skipped_total",
		"Windows dropped for lacking a sensor quorum.")
	ins.readings = r.Counter("sensorguard_readings_total",
		"Sensor messages delivered inside processed windows.")
	ins.rawAlarms = r.Counter("sensorguard_alarms_raw_total",
		"Per-sensor raw alarms (mapped state != correct state).")
	ins.filteredAlarms = r.Counter("sensorguard_alarms_filtered_total",
		"Per-sensor alarms surviving the alarm filter.")
	ins.tracksOpened = r.Counter("sensorguard_tracks_opened_total",
		"Error/attack tracks opened.")
	ins.tracksClosed = r.Counter("sensorguard_tracks_closed_total",
		"Error/attack tracks closed.")
	ins.stateSpawns = r.Counter("sensorguard_state_spawns_total",
		"Model states spawned by the on-line clusterer.")
	ins.stateMerges = r.Counter("sensorguard_state_merges_total",
		"Model-state merge events.")
	ins.modelStates = r.Gauge("sensorguard_model_states",
		"Current model-state count.")
	ins.openTracks = r.Gauge("sensorguard_open_tracks",
		"Error/attack tracks open right now.")
	ins.quarantined = r.Gauge("sensorguard_quarantined_sensors",
		"Sensors excluded from the observable estimate.")
	ins.sensorsSeen = r.Gauge("sensorguard_sensors_seen",
		"Distinct sensors observed so far.")
	ins.stageDerive = r.Histogram("sensorguard_stage_derive_seconds",
		"Per-window latency of sensor-mean derivation (Eq. 2-4 inputs).", buckets)
	ins.stageClassify = r.Histogram("sensorguard_stage_classify_seconds",
		"Per-window latency of quarantine re-derivation (the §3.4 classifier).", buckets)
	ins.stageMap = r.Histogram("sensorguard_stage_map_seconds",
		"Per-window latency of observable/correct state identification.", buckets)
	ins.stageAlarm = r.Histogram("sensorguard_stage_alarm_seconds",
		"Per-window latency of alarm filtering, tracks, and M_CE updates.", buckets)
	ins.stageHMM = r.Histogram("sensorguard_stage_hmm_seconds",
		"Per-window latency of M_CO/M_C/M_O updates and state adaptation.", buckets)
	ins.stepSeconds = r.Histogram("sensorguard_step_seconds",
		"End-to-end latency of one Detector.Step call.", buckets)
	return ins
}

// finish folds one completed (non-error) step into the metrics and emits the
// window's event.
func (ins *instruments) finish(d *Detector, res StepResult, ev *obs.Event) {
	if res.Skipped {
		ins.skipped.Inc()
	} else {
		ins.windows.Inc()
		ins.readings.Add(uint64(ev.Readings))
		if ev.RawAlarms > 0 {
			ins.rawAlarms.Add(uint64(ev.RawAlarms))
		}
		if ev.FilteredAlarms > 0 {
			ins.filteredAlarms.Add(uint64(ev.FilteredAlarms))
		}
		if len(ev.TracksOpened) > 0 {
			ins.tracksOpened.Add(uint64(len(ev.TracksOpened)))
		}
		if len(ev.TracksClosed) > 0 {
			ins.tracksClosed.Add(uint64(len(ev.TracksClosed)))
		}
		for _, e := range res.Events {
			switch e.Kind {
			case cluster.EventSpawn:
				ev.StateSpawns++
			case cluster.EventMerge:
				ev.StateMerges++
			}
		}
		if ev.StateSpawns > 0 {
			ins.stateSpawns.Add(uint64(ev.StateSpawns))
		}
		if ev.StateMerges > 0 {
			ins.stateMerges.Add(uint64(ev.StateMerges))
		}
	}
	ins.modelStates.Set(float64(d.states.Len()))
	ins.openTracks.Set(float64(d.tracks.OpenCount()))
	ins.quarantined.Set(float64(len(d.quarantined)))
	ins.sensorsSeen.Set(float64(len(d.seen)))
	ins.stageDerive.Observe(float64(ev.Latency.DeriveNS) / 1e9)
	ins.stageClassify.Observe(float64(ev.Latency.ClassifyNS) / 1e9)
	ins.stageMap.Observe(float64(ev.Latency.MapNS) / 1e9)
	ins.stageAlarm.Observe(float64(ev.Latency.AlarmNS) / 1e9)
	ins.stageHMM.Observe(float64(ev.Latency.HMMNS) / 1e9)
	ins.stepSeconds.Observe(float64(ev.Latency.TotalNS) / 1e9)
	if ins.sink != nil {
		ev.ModelStates = d.states.Len()
		ev.OpenTracks = d.tracks.OpenCount()
		if len(d.quarantined) > 0 {
			ev.Quarantined = d.Quarantined()
		}
		ins.sink.Emit(*ev)
	}
}
