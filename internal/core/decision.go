package core

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"

	"sensorguard/internal/classify"
	"sensorguard/internal/network"
	"sensorguard/internal/track"
	"sensorguard/internal/vecmat"
)

// A DecisionRecord is the per-window provenance of the detector: every
// quantity the paper's methodology derives on the way to a verdict, captured
// the moment Step computes it. Where a Report answers "what is wrong", the
// decision record answers "why the detector thinks so" — the observable and
// correct states of Eqs. (2)–(4), each sensor's nearest state l_j, the
// cluster majorities, the raw and filtered alarms, the track symbols
// (including ⊥ for agreement), and the §3.4 structural evidence read off
// B^CO this window.
type DecisionRecord struct {
	// Deployment is stamped by the serving layer (empty for a bare
	// detector).
	Deployment string `json:"deployment,omitempty"`
	// Window is the window ordinal i.
	Window int `json:"window"`
	// TraceID links the record to its trace when the window carried a
	// sampled span context.
	TraceID string `json:"trace_id,omitempty"`
	// Skipped records a window dropped for lacking a sensor quorum; all
	// later fields are zero.
	Skipped bool `json:"skipped,omitempty"`
	// Observable and Correct are o_i (Eq. 2) and c_i (Eq. 4).
	Observable int `json:"observable"`
	Correct    int `json:"correct"`
	// ObservableAttrs and CorrectAttrs are the attribute vectors of those
	// model states (absent if the state has since merged away).
	ObservableAttrs vecmat.Vector `json:"observable_attrs,omitempty"`
	CorrectAttrs    vecmat.Vector `json:"correct_attrs,omitempty"`
	// Clusters are the per-state sensor counts behind the Eq. (4)
	// majority, ascending by state ID.
	Clusters []ClusterSize `json:"clusters,omitempty"`
	// Sensors are the per-sensor outcomes, ascending by sensor ID.
	Sensors []SensorDecision `json:"sensors,omitempty"`
	// RawAlarms and FilteredAlarms count this window's alarms before and
	// after the k-of-n filter.
	RawAlarms      int `json:"raw_alarms"`
	FilteredAlarms int `json:"filtered_alarms"`
	// Quarantined lists the sensors excluded from the observable estimate
	// this window.
	Quarantined []int `json:"quarantined,omitempty"`
	// Evidence is the structural classification read off B^CO after this
	// window (nil while the model has no active states yet).
	Evidence *DecisionEvidence `json:"evidence,omitempty"`
}

// ClusterSize counts the sensors whose window observation mapped onto one
// model state (Eq. 3) — the cluster sizes the Eq. (4) majority is taken
// over.
type ClusterSize struct {
	State int `json:"state"`
	Size  int `json:"size"`
}

// SensorDecision is one sensor's per-window outcome.
type SensorDecision struct {
	Sensor int `json:"sensor"`
	// Nearest is the model state the sensor's observation mapped to (l_j,
	// Eq. 3).
	Nearest int `json:"nearest_state"`
	// RawAlarm is l_j ≠ c_i; FilteredAlarm is the k-of-n filter output.
	RawAlarm      bool `json:"raw_alarm"`
	FilteredAlarm bool `json:"filtered_alarm"`
	// TrackOpen reports an open error/attack track after this window.
	TrackOpen bool `json:"track_open"`
	// Symbol is the symbol recorded on the sensor's track this window:
	// "⊥" when the sensor agreed with the majority, the observed state ID
	// otherwise, empty when nothing was recorded (no open track).
	Symbol string `json:"symbol,omitempty"`
}

// DecisionEvidence is the §3.4 structural analysis of B^CO as it stood after
// one window — the row/column orthogonality scores and attribute-divergence
// test the network verdict rests on.
type DecisionEvidence struct {
	// Verdict is the classify.Kind name ("none", "dynamic-deletion", ...).
	Verdict    string  `json:"verdict"`
	Confidence float64 `json:"confidence"`
	// RowViolations are non-orthogonal B^CO row pairs — two correct states
	// observed as one, the Dynamic-Deletion signature. ColViolations are
	// non-orthogonal column pairs — one correct state observed as two, the
	// Dynamic-Creation signature. Each carries the offending state IDs and
	// the dot product that crossed the threshold.
	RowViolations []vecmat.OrthoViolation `json:"row_violations,omitempty"`
	ColViolations []vecmat.OrthoViolation `json:"col_violations,omitempty"`
	// Associations maps each active hidden state to its dominant
	// observable symbol; ActiveHidden lists the states that passed the
	// spurious-state filter.
	Associations []classify.Association `json:"associations,omitempty"`
	ActiveHidden []int                  `json:"active_hidden,omitempty"`
	// Divergence is the Dynamic-Change attribute test per association: the
	// observable-minus-hidden attribute deltas and whether every attribute
	// is displaced beyond the noise floor.
	Divergence []AttributeDivergence `json:"divergence,omitempty"`
}

// AttributeDivergence is the attribute-displacement test input for one
// hidden→symbol association.
type AttributeDivergence struct {
	Hidden int `json:"hidden"`
	Symbol int `json:"symbol"`
	// Delta is observable attrs − hidden attrs, per attribute.
	Delta vecmat.Vector `json:"delta"`
	// AllDisplaced reports hidden ≠ symbol with every |delta| at or above
	// the ChangeMinDelta noise floor — the Dynamic-Change condition.
	AllDisplaced bool `json:"all_displaced"`
}

// DecisionSink receives one record per window. Implementations must be safe
// for use from the goroutine driving the detector.
type DecisionSink interface {
	Record(DecisionRecord)
}

// DecisionRing retains the most recent records in a bounded buffer — the
// store behind /debug/decisions/{deployment}. Safe for concurrent use.
type DecisionRing struct {
	mu      sync.Mutex
	buf     []DecisionRecord
	start   int
	n       int
	emitted int
}

// NewDecisionRing returns a ring retaining the last capacity records
// (capacity < 1 is treated as 1).
func NewDecisionRing(capacity int) *DecisionRing {
	if capacity < 1 {
		capacity = 1
	}
	return &DecisionRing{buf: make([]DecisionRecord, capacity)}
}

// Record appends, evicting the oldest when full.
func (r *DecisionRing) Record(rec DecisionRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.emitted++
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = rec
		r.n++
		return
	}
	r.buf[r.start] = rec
	r.start = (r.start + 1) % len(r.buf)
}

// Records returns the retained records, oldest first.
func (r *DecisionRing) Records() []DecisionRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DecisionRecord, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Len returns the number of retained records.
func (r *DecisionRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns the number of records evicted from the buffer.
func (r *DecisionRing) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.emitted - r.n
}

// DecisionLog streams records as NDJSON — the -audit-log sink. Safe for
// concurrent use; write errors are sticky (first kept, later records
// dropped), check Err after the run.
type DecisionLog struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewDecisionLog returns a log writing NDJSON to w.
func NewDecisionLog(w io.Writer) *DecisionLog {
	return &DecisionLog{enc: json.NewEncoder(w)}
}

// Record writes one NDJSON line.
func (l *DecisionLog) Record(rec DecisionRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	l.err = l.enc.Encode(rec)
}

// Err returns the first write error, if any.
func (l *DecisionLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// decide assembles the window's decision record after step has run.
func (d *Detector) decide(w network.Window, res StepResult) DecisionRecord {
	rec := DecisionRecord{Window: res.Index}
	if w.Trace.Recording() {
		rec.TraceID = w.Trace.Trace.String()
	}
	if res.Skipped {
		rec.Skipped = true
		return rec
	}
	rec.Observable, rec.Correct = res.Observable, res.Correct

	attrs := d.StateAttributes()
	if a, ok := attrs[res.Observable]; ok {
		rec.ObservableAttrs = a.Clone()
	}
	if a, ok := attrs[res.Correct]; ok {
		rec.CorrectAttrs = a.Clone()
	}

	clusters := make(map[int]int)
	ids := make([]int, 0, len(res.Sensors))
	for id := range res.Sensors {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		st := res.Sensors[id]
		clusters[st.Mapped]++
		sd := SensorDecision{
			Sensor:        id,
			Nearest:       st.Mapped,
			RawAlarm:      st.Raw,
			FilteredAlarm: st.Filtered,
			TrackOpen:     st.TrackOpen,
		}
		if st.Recorded {
			if st.Symbol == track.Bottom {
				sd.Symbol = "⊥"
			} else {
				sd.Symbol = strconv.Itoa(st.Symbol)
			}
		}
		if st.Raw {
			rec.RawAlarms++
		}
		if st.Filtered {
			rec.FilteredAlarms++
		}
		rec.Sensors = append(rec.Sensors, sd)
	}
	states := make([]int, 0, len(clusters))
	for s := range clusters {
		states = append(states, s)
	}
	sort.Ints(states)
	for _, s := range states {
		rec.Clusters = append(rec.Clusters, ClusterSize{State: s, Size: clusters[s]})
	}
	if len(d.quarantined) > 0 {
		rec.Quarantined = d.Quarantined()
	}
	rec.Evidence = d.evidence(attrs)
	return rec
}

// evidence runs the §3.4 network analysis on the current B^CO and folds in
// the attribute-divergence test; nil while no states are active.
func (d *Detector) evidence(attrs map[int]vecmat.Vector) *DecisionEvidence {
	diag, err := classify.Network(d.ModelCO(), attrs, d.cfg.Classify)
	if err != nil {
		return nil
	}
	ev := &DecisionEvidence{
		Verdict:       diag.Kind.String(),
		Confidence:    diag.Confidence,
		RowViolations: diag.RowViolations,
		ColViolations: diag.ColViolations,
		Associations:  diag.Associations,
		ActiveHidden:  diag.ActiveHidden,
	}
	for _, a := range diag.Associations {
		hc, okH := attrs[a.Hidden]
		oc, okO := attrs[a.Symbol]
		if !okH || !okO || len(hc) != len(oc) {
			continue
		}
		div := AttributeDivergence{
			Hidden:       a.Hidden,
			Symbol:       a.Symbol,
			Delta:        make(vecmat.Vector, len(hc)),
			AllDisplaced: a.Hidden != a.Symbol,
		}
		for i := range hc {
			div.Delta[i] = oc[i] - hc[i]
			if math.Abs(div.Delta[i]) < d.cfg.Classify.ChangeMinDelta {
				div.AllDisplaced = false
			}
		}
		ev.Divergence = append(ev.Divergence, div)
	}
	return ev
}
