package core

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"sensorguard/internal/obs"
	"sensorguard/internal/vecmat"
)

func TestDecisionRingEvictsOldest(t *testing.T) {
	r := NewDecisionRing(3)
	for i := 0; i < 5; i++ {
		r.Record(DecisionRecord{Window: i})
	}
	recs := r.Records()
	if len(recs) != 3 || r.Len() != 3 {
		t.Fatalf("retained %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.Window != i+2 {
			t.Errorf("slot %d holds window %d, want %d", i, rec.Window, i+2)
		}
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", r.Dropped())
	}
}

func TestDecisionLogWritesNDJSON(t *testing.T) {
	var buf bytes.Buffer
	l := NewDecisionLog(&buf)
	l.Record(DecisionRecord{Deployment: "gdi", Window: 1})
	l.Record(DecisionRecord{Deployment: "gdi", Window: 2})
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	for i, line := range lines {
		var rec DecisionRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if rec.Window != i+1 || rec.Deployment != "gdi" {
			t.Errorf("line %d decoded to %+v", i, rec)
		}
	}
}

// TestStepEmitsDecisionRecords drives an agreeing network plus one deviating
// sensor and checks the per-window record carries the full provenance: the
// Eq. (2)/(4) states with their attributes, per-sensor nearest states, the
// raw-vs-filtered alarm split, cluster sizes, and track symbols including ⊥.
func TestStepEmitsDecisionRecords(t *testing.T) {
	cfg := DefaultConfig(keyStates())
	ring := NewDecisionRing(64)
	cfg.Decisions = ring
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	windows := 0
	for i := 0; i < 12; i++ {
		bySensor := make([]vecmat.Vector, 6)
		for s := 0; s < 5; s++ {
			bySensor[s] = keyStates()[2]
		}
		bySensor[5] = keyStates()[0] // persistent deviant: alarms, then a track
		if _, err := d.Step(window(i, bySensor)); err != nil {
			t.Fatal(err)
		}
		windows++
	}
	recs := ring.Records()
	if len(recs) != windows {
		t.Fatalf("got %d records for %d windows", len(recs), windows)
	}

	last := recs[len(recs)-1]
	if last.Window != windows-1 {
		t.Errorf("last record window %d, want %d", last.Window, windows-1)
	}
	if last.Observable != last.Correct {
		t.Errorf("agreeing majority split observable %d from correct %d", last.Observable, last.Correct)
	}
	if len(last.ObservableAttrs) == 0 || len(last.CorrectAttrs) == 0 {
		t.Error("state attributes missing from record")
	}
	if len(last.Sensors) != 6 {
		t.Fatalf("record has %d sensors, want 6", len(last.Sensors))
	}
	// Sensors ascend by ID; the deviant is sensor 5.
	total := 0
	for i, sd := range last.Sensors {
		if sd.Sensor != i {
			t.Errorf("sensor slot %d holds ID %d", i, sd.Sensor)
		}
	}
	for _, cs := range last.Clusters {
		total += cs.Size
	}
	if total != 6 {
		t.Errorf("cluster sizes sum to %d, want 6", total)
	}
	deviant := last.Sensors[5]
	if !deviant.RawAlarm {
		t.Error("deviant sensor carries no raw alarm")
	}
	if deviant.Nearest == last.Correct {
		t.Error("deviant mapped onto the correct state")
	}
	if !deviant.TrackOpen || deviant.Symbol != strconv.Itoa(deviant.Nearest) {
		t.Errorf("deviant track %v symbol %q, want open with symbol %d",
			deviant.TrackOpen, deviant.Symbol, deviant.Nearest)
	}
	// Agreeing sensors with open tracks record the ⊥ symbol; ones without a
	// track record nothing.
	for _, sd := range last.Sensors[:5] {
		if sd.RawAlarm {
			t.Errorf("agreeing sensor %d alarmed", sd.Sensor)
		}
		if sd.Symbol != "" && sd.Symbol != "⊥" {
			t.Errorf("agreeing sensor %d symbol %q", sd.Sensor, sd.Symbol)
		}
	}
	if last.Evidence == nil {
		t.Fatal("record carries no structural evidence")
	}
	if last.Evidence.Verdict == "" {
		t.Error("evidence has no verdict")
	}

	// Raw vs filtered: the first deviating window alarms raw but the 4-of-6
	// filter has not tripped yet.
	first := recs[0]
	if first.RawAlarms != 1 || first.FilteredAlarms != 0 {
		t.Errorf("first window raw=%d filtered=%d, want 1 and 0", first.RawAlarms, first.FilteredAlarms)
	}
	if last.RawAlarms != 1 || last.FilteredAlarms != 1 {
		t.Errorf("last window raw=%d filtered=%d, want 1 and 1", last.RawAlarms, last.FilteredAlarms)
	}
}

func TestStepDecisionSkippedWindow(t *testing.T) {
	cfg := DefaultConfig(keyStates())
	ring := NewDecisionRing(4)
	cfg.Decisions = ring
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two sensors < MinSensors(3): the window is skipped but still recorded.
	if _, err := d.Step(uniformWindow(0, 2, keyStates()[0])); err != nil {
		t.Fatal(err)
	}
	recs := ring.Records()
	if len(recs) != 1 || !recs[0].Skipped {
		t.Fatalf("skipped window not recorded as skipped: %+v", recs)
	}
	if len(recs[0].Sensors) != 0 || recs[0].Evidence != nil {
		t.Error("skipped record carries pipeline fields")
	}
}

// TestStepDecisionCarriesTraceID checks the record links to the window's
// trace when one is sampled, and stays unlinked otherwise.
func TestStepDecisionCarriesTraceID(t *testing.T) {
	cfg := DefaultConfig(keyStates())
	ring := NewDecisionRing(4)
	cfg.Decisions = ring
	cfg.Tracer = obs.NewTracer(obs.TracerConfig{})
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := uniformWindow(0, 5, keyStates()[1])
	w.Trace = obs.NewRootContext()
	if _, err := d.Step(w); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Step(uniformWindow(1, 5, keyStates()[1])); err != nil {
		t.Fatal(err)
	}
	recs := ring.Records()
	if recs[0].TraceID != w.Trace.Trace.String() {
		t.Errorf("record trace %q, want %q", recs[0].TraceID, w.Trace.Trace.String())
	}
	if recs[1].TraceID != "" {
		t.Errorf("untraced window carries trace ID %q", recs[1].TraceID)
	}
}

// TestStepTracedEmitsStageSpans checks the detector's post-hoc span tree: a
// sampled window leaves one detector.step root whose five stage children
// tile its duration.
func TestStepTracedEmitsStageSpans(t *testing.T) {
	cfg := DefaultConfig(keyStates())
	tracer := obs.NewTracer(obs.TracerConfig{})
	cfg.Tracer = tracer
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := uniformWindow(0, 5, keyStates()[1])
	w.Trace = obs.NewRootContext()
	if _, err := d.Step(w); err != nil {
		t.Fatal(err)
	}
	traces := tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	byName := map[string]obs.SpanData{}
	for _, sp := range traces[0].Spans {
		byName[sp.Name] = sp
	}
	step, ok := byName["detector.step"]
	if !ok {
		t.Fatalf("no detector.step span in %v", names(traces[0].Spans))
	}
	if step.ParentID != w.Trace.Span.String() {
		t.Errorf("detector.step parent %q, want the window's context span %q", step.ParentID, w.Trace.Span.String())
	}
	var stagesNS int64
	for _, stage := range []string{"detector.derive", "detector.classify", "detector.map", "detector.alarm", "detector.hmm"} {
		sp, ok := byName[stage]
		if !ok {
			t.Fatalf("stage span %s missing from %v", stage, names(traces[0].Spans))
		}
		if sp.ParentID != step.SpanID {
			t.Errorf("%s parent %q, want detector.step %q", stage, sp.ParentID, step.SpanID)
		}
		stagesNS += sp.DurationNS
	}
	if stagesNS != step.DurationNS {
		t.Errorf("stage durations sum to %dns, root spans %dns", stagesNS, step.DurationNS)
	}
}

func names(spans []obs.SpanData) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}
