package core

import (
	"testing"
	"time"

	"sensorguard/internal/markov"
	"sensorguard/internal/network"
	"sensorguard/internal/obs"
	"sensorguard/internal/vecmat"
)

// TestStepZeroAllocWithHealthTracker extends the hot-path contract to the
// health feed: a detector with a HealthTracker attached must still step
// alloc-free once warm. The tracker is the one observer that is meant to be
// on for every deployment in a fleet, so it cannot be allowed to re-tax the
// path the bare-Step pin protects.
func TestStepZeroAllocWithHealthTracker(t *testing.T) {
	d := mustDetector(t)
	tracker := obs.NewHealthTracker(obs.HealthConfig{})
	d.SetHealthTracker(tracker)
	points := keyStates()
	wins := make([]network.Window, 4)
	for i := range wins {
		wins[i] = uniformWindow(i, 10, points[i])
	}
	idx := 0
	step := func() {
		w := wins[idx%4]
		w.Index = idx
		if _, err := d.Step(w); err != nil {
			t.Fatal(err)
		}
		idx++
	}
	for i := 0; i < 128; i++ {
		step()
	}
	if got := testing.AllocsPerRun(500, step); got != 0 {
		t.Fatalf("steady-state Step with health tracker allocates %v times per window, want 0", got)
	}
	if snap := tracker.Snapshot(); snap.Windows != idx {
		t.Fatalf("tracker saw %d windows, detector stepped %d", snap.Windows, idx)
	}
}

// TestObserveHealthFeedsTracker checks the sample the step path folds into
// the tracker: quiet traffic yields zero alarm rates, a persistent outlier
// raises the raw rate, and window/track counters line up with what the
// detector reports.
func TestObserveHealthFeedsTracker(t *testing.T) {
	d := mustDetector(t)
	tracker := obs.NewHealthTracker(obs.HealthConfig{})
	d.SetHealthTracker(tracker)
	points := keyStates()

	for i := 0; i < 60; i++ {
		if _, err := d.Step(uniformWindow(i, 10, points[i%4])); err != nil {
			t.Fatal(err)
		}
	}
	quiet := tracker.Snapshot()
	if quiet.Windows != 60 {
		t.Fatalf("windows = %d, want 60", quiet.Windows)
	}
	if quiet.RawAlarmRate != 0 || quiet.FilteredAlarmRate != 0 {
		t.Fatalf("alarm rates on quiet traffic: raw %v filtered %v",
			quiet.RawAlarmRate, quiet.FilteredAlarmRate)
	}

	// One sensor pinned far off every key state: raw alarms every window.
	outlier := make([]vecmat.Vector, 10)
	for i := 60; i < 120; i++ {
		for s := 0; s < 9; s++ {
			outlier[s] = points[i%4]
		}
		outlier[9] = vecmat.Vector{45, 20}
		if _, err := d.Step(window(i, outlier)); err != nil {
			t.Fatal(err)
		}
	}
	loud := tracker.Snapshot()
	if loud.Windows != 120 {
		t.Fatalf("windows = %d, want 120", loud.Windows)
	}
	if loud.RawAlarmRate <= quiet.RawAlarmRate {
		t.Fatalf("raw alarm rate did not rise with a persistent outlier: %v", loud.RawAlarmRate)
	}
	if loud.OpenTracks != d.Stats().OpenTracks {
		t.Fatalf("tracker open tracks %d != detector %d", loud.OpenTracks, d.Stats().OpenTracks)
	}
}

// TestDriftBaselineLifecycle pins the lazy baseline: absent before the first
// window, captured on demand afterwards, and the shift metrics read zero at
// capture time then move once the transition structure does.
func TestDriftBaselineLifecycle(t *testing.T) {
	d := mustDetector(t)
	if d.EnsureDriftBaseline() {
		t.Fatal("baseline armed before any window")
	}
	if drift := d.ModelDrift(); drift.BaselineWindow != 0 || drift.MCShift != 0 {
		t.Fatalf("drift reported without baseline: %+v", drift)
	}

	points := keyStates()
	for i := 0; i < 40; i++ {
		if _, err := d.Step(uniformWindow(i, 10, points[i%4])); err != nil {
			t.Fatal(err)
		}
	}
	if !d.EnsureDriftBaseline() {
		t.Fatal("baseline not captured after 40 windows")
	}
	at := d.ModelDrift()
	if at.BaselineWindow != 40 {
		t.Fatalf("baseline window = %d, want 40", at.BaselineWindow)
	}
	if at.MCShift != 0 || at.MOShift != 0 {
		t.Fatalf("shift nonzero immediately after capture: %+v", at)
	}
	// Re-arming is a no-op once captured.
	if !d.EnsureDriftBaseline() {
		t.Fatal("EnsureDriftBaseline lost the baseline")
	}

	// Change the visiting pattern: dwell on one state instead of cycling.
	// The M_C transition rows move, so the shift must become positive.
	for i := 40; i < 140; i++ {
		if _, err := d.Step(uniformWindow(i, 10, points[0])); err != nil {
			t.Fatal(err)
		}
	}
	after := d.ModelDrift()
	if after.BaselineWindow != 40 {
		t.Fatalf("baseline moved: %d", after.BaselineWindow)
	}
	if after.MCShift <= 0 {
		t.Fatalf("M_C shift = %v after dwell change, want > 0", after.MCShift)
	}
	if after.MCShift > 1 || after.MOShift > 1 {
		t.Fatalf("shift out of [0,1]: %+v", after)
	}

	// Explicit recapture resets the reference.
	d.CaptureDriftBaseline()
	re := d.ModelDrift()
	if re.BaselineWindow != 140 || re.MCShift != 0 {
		t.Fatalf("recapture did not reset reference: %+v", re)
	}
}

// TestChainShift exercises the row-distance metric directly: identical chains
// read 0, a redistributed row reads its half-L1 mass, and states that exist
// only on one side count as fully shifted rows.
func TestChainShift(t *testing.T) {
	mk := func(states ...int) *markov.Chain {
		c, err := markov.NewChain(0.05)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range states {
			c.Observe(s)
		}
		return c
	}

	same := mk(1, 2, 1, 2, 1, 2, 1, 2)
	if got := chainShift(same, chainRows(same)); got != 0 {
		t.Fatalf("self-shift = %v, want 0", got)
	}

	// Baseline alternates 1↔2; the live chain always returns to 1. Both
	// from-rows move, so the mean shift is strictly positive and ≤ 1.
	base := chainRows(mk(1, 2, 1, 2, 1, 2, 1, 2))
	moved := mk(1, 1, 1, 2, 1, 1, 1, 1)
	got := chainShift(moved, base)
	if got <= 0 || got > 1 {
		t.Fatalf("shift = %v, want in (0,1]", got)
	}

	// A state present only in the live chain contributes a disjoint row.
	grown := mk(1, 2, 3, 1, 2, 3)
	if got := chainShift(grown, base); got <= 0 {
		t.Fatalf("shift with new state = %v, want > 0", got)
	}

	// Empty on both sides is defined as zero.
	empty, err := markov.NewChain(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got := chainShift(empty, nil); got != 0 {
		t.Fatalf("empty shift = %v, want 0", got)
	}
}

// TestModelDriftOrthogonality checks the polled B^CO margin: a healthy
// detector trained on well-separated key states keeps its off-diagonal dot
// under the classifier threshold, i.e. a positive margin.
func TestModelDriftOrthogonality(t *testing.T) {
	d := mustDetector(t)
	points := keyStates()
	for i := 0; i < 200; i++ {
		if _, err := d.Step(uniformWindow(i, 10, points[i%4])); err != nil {
			t.Fatal(err)
		}
	}
	drift := d.ModelDrift()
	if drift.OrthoMaxDot < 0 {
		t.Fatalf("max off-diagonal dot negative: %v", drift.OrthoMaxDot)
	}
	th := DefaultConfig(keyStates()).Classify.NetRowOrtho.MaxOffDiag
	if want := th - drift.OrthoMaxDot; drift.OrthoMargin != want {
		t.Fatalf("margin %v, want threshold %v - dot %v = %v",
			drift.OrthoMargin, th, drift.OrthoMaxDot, want)
	}
	if drift.OrthoMargin <= 0 {
		t.Fatalf("healthy detector reads non-positive ortho margin: %+v", drift)
	}
}

// TestSharedRefreshDrift pins the poller entry point: inert without a
// tracker or before the first window, then publishes drift to the tracker.
func TestSharedRefreshDrift(t *testing.T) {
	d := mustDetector(t)
	s := NewShared(d)
	now := time.Unix(1700000000, 0)
	if _, ok := s.RefreshDrift(now); ok {
		t.Fatal("RefreshDrift published without a tracker")
	}

	tracker := obs.NewHealthTracker(obs.HealthConfig{})
	d.SetHealthTracker(tracker)
	if _, ok := s.RefreshDrift(now); ok {
		t.Fatal("RefreshDrift published before any window")
	}

	points := keyStates()
	for i := 0; i < 30; i++ {
		if _, err := s.Step(uniformWindow(i, 10, points[i%4])); err != nil {
			t.Fatal(err)
		}
	}
	drift, ok := s.RefreshDrift(now)
	if !ok {
		t.Fatal("RefreshDrift inert on a live detector")
	}
	if drift.BaselineWindow != 30 {
		t.Fatalf("baseline window = %d, want 30", drift.BaselineWindow)
	}
	snap := tracker.Snapshot()
	if snap.Drift.BaselineWindow != 30 || !snap.DriftUpdatedAt.Equal(now) {
		t.Fatalf("tracker did not receive drift: %+v at %v", snap.Drift, snap.DriftUpdatedAt)
	}
}

// TestStepHealthOverhead pins the acceptance bound from the health tier:
// folding the sample into the tracker must cost < 5% of a steady-state Step.
// Interleaved median-of-trials keeps scheduler noise from deciding the
// verdict on loaded CI machines.
func TestStepHealthOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation distorts the overhead ratio")
	}
	points := keyStates()
	run := func(d *Detector, wins []network.Window, n int) time.Duration {
		start := time.Now()
		for i := 0; i < n; i++ {
			w := wins[i%4]
			w.Index = 1000 + i
			if _, err := d.Step(w); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	build := func(withTracker bool) (*Detector, []network.Window) {
		d := mustDetector(t)
		if withTracker {
			d.SetHealthTracker(obs.NewHealthTracker(obs.HealthConfig{}))
		}
		wins := make([]network.Window, 4)
		for i := range wins {
			wins[i] = uniformWindow(i, 10, points[i])
		}
		for i := 0; i < 256; i++ {
			w := wins[i%4]
			w.Index = i
			if _, err := d.Step(w); err != nil {
				t.Fatal(err)
			}
		}
		return d, wins
	}
	bare, bareWins := build(false)
	tracked, trackedWins := build(true)

	const batch = 20000
	const trials = 7
	bareT := make([]time.Duration, trials)
	trackT := make([]time.Duration, trials)
	for i := 0; i < trials; i++ {
		bareT[i] = run(bare, bareWins, batch)
		trackT[i] = run(tracked, trackedWins, batch)
	}
	median := func(ds []time.Duration) time.Duration {
		s := append([]time.Duration(nil), ds...)
		for i := range s {
			for j := i + 1; j < len(s); j++ {
				if s[j] < s[i] {
					s[i], s[j] = s[j], s[i]
				}
			}
		}
		return s[len(s)/2]
	}
	mb, mt := median(bareT), median(trackT)
	ratio := float64(mt) / float64(mb)
	t.Logf("steady-state Step: bare %v, with tracker %v (%.2f%% overhead)",
		mb/batch, mt/batch, (ratio-1)*100)
	if ratio > 1.05 {
		t.Fatalf("health tracker overhead %.2f%% exceeds 5%% budget (bare %v, tracked %v)",
			(ratio-1)*100, mb, mt)
	}
}
