package core

import (
	"strings"
	"testing"

	"sensorguard/internal/classify"
	"sensorguard/internal/obs"
	"sensorguard/internal/vecmat"
)

// observedRun drives an instrumented detector through n windows with sensor
// 9 stuck far off the environment, so alarms, tracks, and M_CE all engage.
func observedRun(t *testing.T, n int) (*Detector, *obs.Registry, *obs.RingSink) {
	t.Helper()
	reg := obs.NewRegistry()
	ring := obs.NewRingSink(n + 8)
	cfg := DefaultConfig(keyStates())
	cfg.Observer = &obs.Observer{Metrics: reg, Sink: ring}
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		bySensor := make([]vecmat.Vector, 10)
		for s := 0; s < 9; s++ {
			bySensor[s] = keyStates()[i%4]
		}
		bySensor[9] = vecmat.Vector{45, 20}
		if _, err := d.Step(window(i, bySensor)); err != nil {
			t.Fatal(err)
		}
	}
	return d, reg, ring
}

func TestObserverEmitsOneEventPerWindow(t *testing.T) {
	const n = 48
	d, _, ring := observedRun(t, n)
	evs := ring.Events()
	if len(evs) != n {
		t.Fatalf("got %d events for %d windows", len(evs), n)
	}
	var opened, raw, filtered int
	for i, ev := range evs {
		if ev.Window != i {
			t.Errorf("event %d: window = %d", i, ev.Window)
		}
		if ev.Skipped {
			t.Errorf("event %d unexpectedly skipped", i)
		}
		if ev.Sensors != 10 {
			t.Errorf("event %d: sensors = %d, want 10", i, ev.Sensors)
		}
		if ev.ModelStates <= 0 {
			t.Errorf("event %d: model states = %d", i, ev.ModelStates)
		}
		if ev.Latency.TotalNS <= 0 {
			t.Errorf("event %d: total latency = %d", i, ev.Latency.TotalNS)
		}
		opened += len(ev.TracksOpened)
		raw += ev.RawAlarms
		filtered += ev.FilteredAlarms
	}
	if opened != d.Tracks().Opened() {
		t.Errorf("events record %d opened tracks, manager says %d", opened, d.Tracks().Opened())
	}
	steps, wantRaw, wantFiltered := d.AlarmStats().Totals()
	if steps != n*10 {
		t.Errorf("alarm stats cover %d sensor-steps, want %d", steps, n*10)
	}
	if raw != wantRaw || filtered != wantFiltered {
		t.Errorf("events count %d/%d raw/filtered alarms, stats say %d/%d",
			raw, filtered, wantRaw, wantFiltered)
	}
}

func TestObserverMetricsMatchDetectorState(t *testing.T) {
	const n = 48
	d, reg, _ := observedRun(t, n)
	st := d.Stats()
	counter := func(name string) int { return int(reg.Counter(name, "").Value()) }
	gauge := func(name string) int { return int(reg.Gauge(name, "").Value()) }
	if got := counter("sensorguard_windows_total"); got != st.Steps {
		t.Errorf("windows_total = %d, Stats.Steps = %d", got, st.Steps)
	}
	if got := counter("sensorguard_tracks_opened_total"); got != st.TracksOpened {
		t.Errorf("tracks_opened_total = %d, Stats.TracksOpened = %d", got, st.TracksOpened)
	}
	_, raw, filtered := d.AlarmStats().Totals()
	if got := counter("sensorguard_alarms_raw_total"); got != raw {
		t.Errorf("alarms_raw_total = %d, stats raw = %d", got, raw)
	}
	if got := counter("sensorguard_alarms_filtered_total"); got != filtered {
		t.Errorf("alarms_filtered_total = %d, stats filtered = %d", got, filtered)
	}
	if got := gauge("sensorguard_open_tracks"); got != st.OpenTracks {
		t.Errorf("open_tracks = %d, Stats.OpenTracks = %d", got, st.OpenTracks)
	}
	if got := gauge("sensorguard_model_states"); got != st.ModelStates {
		t.Errorf("model_states = %d, Stats.ModelStates = %d", got, st.ModelStates)
	}
	if got := reg.Histogram("sensorguard_step_seconds", "", nil).Count(); got != uint64(n) {
		t.Errorf("step_seconds count = %d, want %d", got, n)
	}
	for _, stage := range []string{"derive", "classify", "map", "alarm", "hmm"} {
		name := "sensorguard_stage_" + stage + "_seconds"
		if got := reg.Histogram(name, "", nil).Count(); got != uint64(n) {
			t.Errorf("%s count = %d, want %d", name, got, n)
		}
	}
}

func TestObserverSkippedWindow(t *testing.T) {
	reg := obs.NewRegistry()
	ring := obs.NewRingSink(4)
	cfg := DefaultConfig(keyStates())
	cfg.Observer = &obs.Observer{Metrics: reg, Sink: ring}
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Step(uniformWindow(0, 1, keyStates()[0])) // below MinSensors
	if err != nil {
		t.Fatal(err)
	}
	if !res.Skipped {
		t.Fatal("window not skipped")
	}
	if got := reg.Counter("sensorguard_windows_skipped_total", "").Value(); got != 1 {
		t.Errorf("windows_skipped_total = %d, want 1", got)
	}
	evs := ring.Events()
	if len(evs) != 1 || !evs[0].Skipped {
		t.Fatalf("skipped window not emitted as event: %+v", evs)
	}
}

func TestObserverSinkOnly(t *testing.T) {
	ring := obs.NewRingSink(8)
	cfg := DefaultConfig(keyStates())
	cfg.Observer = &obs.Observer{Sink: ring}
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := d.Step(uniformWindow(i, 10, keyStates()[i%4])); err != nil {
			t.Fatal(err)
		}
	}
	if ring.Len() != 4 {
		t.Errorf("sink-only observer emitted %d events, want 4", ring.Len())
	}
}

func TestDetectorStats(t *testing.T) {
	d, _, _ := observedRun(t, 48)
	st := d.Stats()
	if st.Steps != d.Steps() || st.SkippedWindows != d.SkippedWindows() {
		t.Errorf("Stats windows %d/%d, accessors %d/%d",
			st.Steps, st.SkippedWindows, d.Steps(), d.SkippedWindows())
	}
	if st.TracksOpened != d.Tracks().Opened() {
		t.Errorf("Stats.TracksOpened = %d, manager %d", st.TracksOpened, d.Tracks().Opened())
	}
	if st.TracksOpened == 0 {
		t.Error("stuck sensor never opened a track")
	}
	if st.OpenTracks != len(d.Tracks().ActiveTracks()) {
		t.Errorf("Stats.OpenTracks = %d, manager %d", st.OpenTracks, len(d.Tracks().ActiveTracks()))
	}
	if st.QuarantinedSensors != len(d.Quarantined()) {
		t.Errorf("Stats.QuarantinedSensors = %d, Quarantined() has %d", st.QuarantinedSensors, len(d.Quarantined()))
	}
	if st.ModelStates != len(d.States()) {
		t.Errorf("Stats.ModelStates = %d, States() has %d", st.ModelStates, len(d.States()))
	}
	if st.SensorsSeen != 10 {
		t.Errorf("Stats.SensorsSeen = %d, want 10", st.SensorsSeen)
	}
}

func TestReportOverallTieBreakDeterministic(t *testing.T) {
	// Two error kinds with equal counts: the smaller Kind value must win,
	// regardless of map iteration order.
	rep := Report{
		Sensors: map[int]classify.SensorDiagnosis{
			1: {Sensor: 1, Kind: classify.KindAdditive},
			2: {Sensor: 2, Kind: classify.KindAdditive},
			3: {Sensor: 3, Kind: classify.KindStuckAt},
			4: {Sensor: 4, Kind: classify.KindStuckAt},
		},
	}
	for i := 0; i < 50; i++ {
		if got := rep.Overall(); got != classify.KindStuckAt {
			t.Fatalf("Overall() = %v on iteration %d, want stuck-at", got, i)
		}
	}
	// A strict majority still wins over a smaller-valued minority kind.
	rep.Sensors[5] = classify.SensorDiagnosis{Sensor: 5, Kind: classify.KindAdditive}
	for i := 0; i < 50; i++ {
		if got := rep.Overall(); got != classify.KindAdditive {
			t.Fatalf("Overall() = %v on iteration %d, want additive", got, i)
		}
	}
}

func TestReportString(t *testing.T) {
	rep := Report{
		Detected: true,
		Sensors: map[int]classify.SensorDiagnosis{
			6: {Sensor: 6, Kind: classify.KindStuckAt},
			2: {Sensor: 2, Kind: classify.KindCalibration},
		},
	}
	s := rep.String()
	if !strings.Contains(s, "detected=true") {
		t.Errorf("String() missing detected flag: %q", s)
	}
	// Sensors render in ascending ID order.
	if i2, i6 := strings.Index(s, "sensor 2: calibration"), strings.Index(s, "sensor 6: stuck-at"); i2 < 0 || i6 < 0 || i2 > i6 {
		t.Errorf("String() sensor lines wrong or unordered:\n%s", s)
	}
}
