package core

import (
	"time"

	"sensorguard/internal/cluster"
	"sensorguard/internal/markov"
	"sensorguard/internal/obs"
)

// This file feeds the detector's own evidence into the obs.HealthTracker
// drift telemetry. Two cost tiers, matching the tracker's split: every Step
// folds a cheap HealthSample (counts the step already produced — no
// allocation, a few dozen nanoseconds), while ModelDrift inspects the learned
// models (B^CO orthogonality, M_C/M_O transition mass) and is meant to be
// called from a background poller, never the step path.

// SetHealthTracker installs (or removes) the per-deployment health tracker;
// wired post-construction like SetTracer, because detectors are built behind
// factory hooks that predate the serving layer's trackers.
func (d *Detector) SetHealthTracker(t *obs.HealthTracker) { d.health = t }

// healthCounts is the per-window accumulator the step loop fills when a
// health tracker is attached; kept off the HealthSample so the sample stays a
// plain value the obs package owns.
type healthCounts struct {
	raw, filtered, symbols, bottoms int
}

// observeHealth folds one step outcome into the health tracker. Allocation-
// free: the per-sensor counts were accumulated inside the step loop (d.hc),
// so only the (usually empty) structural-event slice is walked here.
func (d *Detector) observeHealth(res StepResult) {
	s := obs.HealthSample{Window: res.Index, Skipped: res.Skipped}
	if !res.Skipped {
		s.Sensors = len(res.Sensors)
		s.RawAlarms = d.hc.raw
		s.FilteredAlarms = d.hc.filtered
		s.TrackSymbols = d.hc.symbols
		s.TrackBottoms = d.hc.bottoms
		for _, ev := range res.Events {
			switch ev.Kind {
			case cluster.EventSpawn:
				s.Spawns++
			case cluster.EventMerge:
				s.Merges++
			}
		}
		s.OpenTracks = d.tracks.OpenCount()
	}
	d.health.ObserveWindow(s)
}

// driftBaseline is the post-bootstrap reference the shift metrics compare
// against: each chain's transition rows at capture time.
type driftBaseline struct {
	window int
	mc, mo map[int]map[int]float64 // from → to → prob (only > 0 entries)
}

// CaptureDriftBaseline records the current M_C/M_O transition structure as
// the drift reference. The fleet calls it (via EnsureDriftBaseline) once a
// detector is live; recapturing replaces the reference.
func (d *Detector) CaptureDriftBaseline() {
	d.driftBase = &driftBaseline{
		window: d.steps,
		mc:     chainRows(d.mc),
		mo:     chainRows(d.mo),
	}
}

// EnsureDriftBaseline captures the baseline once the detector has processed
// at least one window; reports whether a baseline now exists.
func (d *Detector) EnsureDriftBaseline() bool {
	if d.driftBase == nil && d.steps > 0 {
		d.CaptureDriftBaseline()
	}
	return d.driftBase != nil
}

func chainRows(c *markov.Chain) map[int]map[int]float64 {
	ids := c.IDs()
	rows := make(map[int]map[int]float64, len(ids))
	for _, from := range ids {
		var row map[int]float64
		for _, to := range ids {
			if p := c.Prob(from, to); p > 0 {
				if row == nil {
					row = make(map[int]float64, len(ids))
				}
				row[to] = p
			}
		}
		if row != nil {
			rows[from] = row
		}
	}
	return rows
}

// chainShift measures how far a chain's transition structure has moved from
// its baseline: the mean, over every from-state present in either, of half
// the L1 distance between the transition rows (0 = identical, 1 = disjoint —
// including states that appeared or vanished since the baseline).
func chainShift(c *markov.Chain, base map[int]map[int]float64) float64 {
	now := chainRows(c)
	froms := make(map[int]bool, len(now)+len(base))
	for id := range now {
		froms[id] = true
	}
	for id := range base {
		froms[id] = true
	}
	if len(froms) == 0 {
		return 0
	}
	var total float64
	for from := range froms {
		nrow, brow := now[from], base[from]
		tos := make(map[int]bool, len(nrow)+len(brow))
		for to := range nrow {
			tos[to] = true
		}
		for to := range brow {
			tos[to] = true
		}
		var l1 float64
		for to := range tos {
			d := nrow[to] - brow[to]
			if d < 0 {
				d = -d
			}
			l1 += d
		}
		total += l1 / 2
	}
	return total / float64(len(froms))
}

// ModelDrift computes the polled drift evidence: the largest off-diagonal
// row dot product of B^CO over the active hidden states (vs. the §3.4 row-
// orthogonality threshold the structural classifier uses), and the M_C/M_O
// transition-mass shift vs. the captured baseline. Allocates; call it from a
// poller, not the step path.
func (d *Detector) ModelDrift() obs.ModelDrift {
	th := d.cfg.Classify.NetRowOrtho.MaxOffDiag
	out := obs.ModelDrift{}
	co := d.mco.Snapshot()
	if co.B != nil {
		var totalVisits float64
		for _, v := range co.Visits {
			totalVisits += v
		}
		// Restrict to active rows the same way the classifier does, so a
		// spurious barely-visited state cannot fake (or mask) drift.
		var rows []int
		for i, id := range co.HiddenIDs {
			if totalVisits > 0 && co.Visits[id]/totalVisits >= d.cfg.Classify.MinStateShare {
				rows = append(rows, i)
			}
		}
		for a := 0; a < len(rows); a++ {
			for b := a + 1; b < len(rows); b++ {
				var dot float64
				for k := 0; k < co.B.Cols(); k++ {
					dot += co.B.At(rows[a], k) * co.B.At(rows[b], k)
				}
				if dot > out.OrthoMaxDot {
					out.OrthoMaxDot = dot
				}
			}
		}
	}
	out.OrthoMargin = th - out.OrthoMaxDot
	if d.driftBase != nil {
		out.BaselineWindow = d.driftBase.window
		out.MCShift = chainShift(d.mc, d.driftBase.mc)
		out.MOShift = chainShift(d.mo, d.driftBase.mo)
	}
	return out
}

// RefreshDrift is the poller entry point on a live detector: it arms the
// baseline if needed, computes ModelDrift, and publishes it to the health
// tracker. No-op without a tracker or before the first processed window.
func (s *Shared) RefreshDrift(at time.Time) (obs.ModelDrift, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.d.health == nil || !s.d.EnsureDriftBaseline() {
		return obs.ModelDrift{}, false
	}
	drift := s.d.ModelDrift()
	s.d.health.SetDrift(drift, at)
	return drift, true
}

