package core

import (
	"testing"
	"time"

	"sensorguard/internal/network"
	"sensorguard/internal/sensor"
	"sensorguard/internal/vecmat"
)

// keyStates are the four GDI dwell states used to seed test detectors.
func keyStates() []vecmat.Vector {
	return []vecmat.Vector{{12, 94}, {17, 84}, {24, 70}, {31, 56}}
}

func mustDetector(t *testing.T) *Detector {
	t.Helper()
	d, err := NewDetector(DefaultConfig(keyStates()))
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	return d
}

// window builds a synthetic observation window: each entry of bySensor is
// one sensor's mean reading (sensor ID = slice index); nil entries are
// missing sensors.
func window(idx int, bySensor []vecmat.Vector) network.Window {
	w := network.Window{
		Index: idx,
		Start: time.Duration(idx) * time.Hour,
		End:   time.Duration(idx+1) * time.Hour,
	}
	for id, v := range bySensor {
		if v == nil {
			continue
		}
		w.Readings = append(w.Readings, sensor.Reading{
			Sensor: id,
			Time:   w.Start + time.Minute,
			Values: v.Clone(),
		})
	}
	return w
}

// uniformWindow puts every one of n sensors at the same point.
func uniformWindow(idx, n int, p vecmat.Vector) network.Window {
	bySensor := make([]vecmat.Vector, n)
	for i := range bySensor {
		bySensor[i] = p
	}
	return window(idx, bySensor)
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero dim", func(c *Config) { c.Dim = 0 }},
		{"no states", func(c *Config) { c.InitialStates = nil }},
		{"ragged state", func(c *Config) { c.InitialStates = []vecmat.Vector{{1}} }},
		{"zero window", func(c *Config) { c.Window = 0 }},
		{"bad alpha", func(c *Config) { c.Alpha = 1 }},
		{"bad beta", func(c *Config) { c.Beta = 0 }},
		{"bad gamma", func(c *Config) { c.Gamma = -1 }},
		{"bad filter", func(c *Config) { c.FilterK = 0 }},
		{"filter k>n", func(c *Config) { c.FilterK = 9; c.FilterN = 3 }},
		{"zero quorum", func(c *Config) { c.MinSensors = 0 }},
		{"merge>=spawn", func(c *Config) { c.MergeDistance = 20 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(keyStates())
			tc.mutate(&cfg)
			if _, err := NewDetector(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestStepIdentifiesStates(t *testing.T) {
	d := mustDetector(t)
	res, err := d.Step(uniformWindow(0, 10, vecmat.Vector{12.2, 93.5}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped {
		t.Fatal("window skipped")
	}
	if res.Observable != 0 || res.Correct != 0 {
		t.Errorf("o=%d c=%d, want state 0 for a (12,94)-like window", res.Observable, res.Correct)
	}
	for id, s := range res.Sensors {
		if s.Raw || s.Filtered || s.TrackOpen {
			t.Errorf("sensor %d alarmed in an agreeing window: %+v", id, s)
		}
		if s.Mapped != 0 {
			t.Errorf("sensor %d mapped to %d", id, s.Mapped)
		}
	}
	if d.Steps() != 1 {
		t.Errorf("Steps = %d", d.Steps())
	}
}

func TestStepSkipsBelowQuorum(t *testing.T) {
	d := mustDetector(t)
	res, err := d.Step(window(0, []vecmat.Vector{{12, 94}, {12, 94}})) // 2 < MinSensors 3
	if err != nil {
		t.Fatal(err)
	}
	if !res.Skipped {
		t.Error("under-quorum window not skipped")
	}
	if d.SkippedWindows() != 1 || d.Steps() != 0 {
		t.Errorf("skipped=%d steps=%d", d.SkippedWindows(), d.Steps())
	}
}

func TestStepRejectsWrongDimension(t *testing.T) {
	d := mustDetector(t)
	w := window(0, []vecmat.Vector{{1}, {1}, {1}})
	if _, err := d.Step(w); err == nil {
		t.Error("wrong-dimension readings accepted")
	}
}

func TestOutlierSensorRaisesAlarmAndTrack(t *testing.T) {
	d := mustDetector(t)
	// Sensor 9 stuck at (15,1) while others agree at (24,70): the raw
	// alarm fires immediately; the filtered alarm (4-of-6) after 4
	// windows; a track opens then.
	for i := 0; i < 8; i++ {
		bySensor := make([]vecmat.Vector, 10)
		for s := 0; s < 9; s++ {
			bySensor[s] = vecmat.Vector{24, 70}
		}
		bySensor[9] = vecmat.Vector{15, 1}
		res, err := d.Step(window(i, bySensor))
		if err != nil {
			t.Fatal(err)
		}
		s9 := res.Sensors[9]
		if !s9.Raw {
			t.Fatalf("window %d: no raw alarm for the outlier", i)
		}
		if i < 3 && s9.Filtered {
			t.Errorf("window %d: filtered alarm before k raw alarms", i)
		}
		if i >= 3 && !s9.Filtered {
			t.Errorf("window %d: filtered alarm missing", i)
		}
		if i >= 3 && !s9.TrackOpen {
			t.Errorf("window %d: track not open", i)
		}
	}
	if _, ok := d.ModelCE(9); !ok {
		t.Error("no M_CE estimator for the tracked sensor")
	}
	if got := d.TrackedSensors(); len(got) != 1 || got[0] != 9 {
		t.Errorf("TrackedSensors = %v", got)
	}
	// The stuck reading spawned its own model state; the M_CE emission
	// must concentrate there.
	snap, _ := d.ModelCE(9)
	if len(snap.SymbolIDs) == 0 {
		t.Fatal("M_CE has no symbols")
	}
	stats := d.AlarmStats()
	if stats.RawRate(9) < 0.99 {
		t.Errorf("outlier raw rate = %v, want ≈1", stats.RawRate(9))
	}
	if stats.RawRate(0) != 0 {
		t.Errorf("healthy raw rate = %v, want 0", stats.RawRate(0))
	}
}

func TestTrackClosesWhenSensorRecovers(t *testing.T) {
	d := mustDetector(t)
	step := func(i int, bad bool) {
		bySensor := make([]vecmat.Vector, 10)
		for s := 0; s < 10; s++ {
			bySensor[s] = vecmat.Vector{24, 70}
		}
		if bad {
			bySensor[9] = vecmat.Vector{15, 1}
		}
		if _, err := d.Step(window(i, bySensor)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		step(i, true)
	}
	if _, open := d.Tracks().Active(9); !open {
		t.Fatal("track did not open")
	}
	// Recovery: after the filter window drains, the track closes.
	for i := 6; i < 14; i++ {
		step(i, false)
	}
	if _, open := d.Tracks().Active(9); open {
		t.Error("track did not close after recovery")
	}
	if len(d.Tracks().ClosedTracks()) != 1 {
		t.Errorf("closed tracks = %d, want 1", len(d.Tracks().ClosedTracks()))
	}
}

func TestModelCOLearnsEnvironmentCycle(t *testing.T) {
	d := mustDetector(t)
	// Cycle through the four states repeatedly, all sensors agreeing.
	points := keyStates()
	for i := 0; i < 160; i++ {
		if _, err := d.Step(uniformWindow(i, 10, points[i%4])); err != nil {
			t.Fatal(err)
		}
	}
	snap := d.ModelCO()
	if len(snap.HiddenIDs) < 4 {
		t.Fatalf("hidden states = %v", snap.HiddenIDs)
	}
	// Diagonal emission: every state observed as itself.
	for i, id := range snap.HiddenIDs[:4] {
		j, err := snap.SymbolIndex(id)
		if err != nil {
			t.Fatalf("state %d has no symbol: %v", id, err)
		}
		if got := snap.B.At(i, j); got < 0.9 {
			t.Errorf("B[%d][%d] = %v, want ≈1", i, j, got)
		}
	}
	// The Markov chain M_C must capture the 0→1→2→3→0 cycle.
	mc := d.CorrectChain()
	for s := 0; s < 4; s++ {
		next := (s + 1) % 4
		if p := mc.Prob(s, next); p < 0.9 {
			t.Errorf("M_C P(%d→%d) = %v, want ≈1", s, next, p)
		}
	}
	if d.ObservableChain().Steps() != 160 {
		t.Errorf("M_O steps = %d", d.ObservableChain().Steps())
	}
}

func TestReportRequiresSteps(t *testing.T) {
	d := mustDetector(t)
	if _, err := d.Report(); err == nil {
		t.Error("Report before any step accepted")
	}
}

func TestMajorityState(t *testing.T) {
	d := mustDetector(t)
	if got := d.majorityState([]int{1, 1, 2}); got != 1 {
		t.Errorf("majority = %d, want 1", got)
	}
	// Tie breaks to the smaller ID.
	if got := d.majorityState([]int{2, 2, 1, 1}); got != 1 {
		t.Errorf("tie majority = %d, want 1", got)
	}
}

func TestStateAttributesCopies(t *testing.T) {
	d := mustDetector(t)
	attrs := d.StateAttributes()
	attrs[0][0] = 999
	if d.StateAttributes()[0][0] == 999 {
		t.Error("StateAttributes leaked internal storage")
	}
}
