package core

import (
	"testing"
	"time"

	"sensorguard/internal/classify"
	"sensorguard/internal/fault"
	"sensorguard/internal/gdi"
	"sensorguard/internal/network"
	"sensorguard/internal/vecmat"
)

// TestScenarioThreeAttributes runs the full pipeline on the three-attribute
// GDI trace (temperature, humidity, pressure — the paper's motes are
// multimodal). A stuck sensor must be detected and typed in the
// three-dimensional attribute space.
func TestScenarioThreeAttributes(t *testing.T) {
	drop, err := fault.NewIntermittent(0.7, 99)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.NewPlan(
		fault.Schedule{
			Sensor:   6,
			Injector: fault.StuckAt{Value: vecmat.Vector{15, 1, 990}},
			Start:    2 * 24 * time.Hour,
		},
		fault.Schedule{Sensor: 6, Injector: drop, Start: 2 * 24 * time.Hour},
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gdi.DefaultGenerateConfig()
	cfg.Days = 12
	cfg.WithPressure = true
	tr, err := gdi.Generate(cfg, network.WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Attributes) != 3 {
		t.Fatalf("attributes = %v", tr.Attributes)
	}
	for _, r := range tr.Readings[:10] {
		if len(r.Values) != 3 {
			t.Fatalf("reading dimension = %d", len(r.Values))
		}
	}

	dcfg := DefaultConfig([]vecmat.Vector{
		{12, 94, 1013}, {17, 84, 1013}, {24, 70, 1013}, {31, 56, 1013},
	})
	dcfg.Dim = 3
	det, err := NewDetector(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.ProcessTrace(tr.Readings); err != nil {
		t.Fatal(err)
	}
	rep, err := det.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected {
		t.Fatal("3-attribute fault not detected")
	}
	diag, ok := rep.Sensors[6]
	if !ok {
		t.Fatalf("no diagnosis for sensor 6; tracked %v", det.TrackedSensors())
	}
	if diag.Kind != classify.KindStuckAt {
		snap, _ := det.ModelCE(6)
		t.Fatalf("sensor 6 kind = %v, want stuck-at\nB^CE:\n%v\nstates %v",
			diag.Kind, snap.B, det.States())
	}
	stuck := det.StateAttributes()[diag.StuckState]
	if len(stuck) != 3 {
		t.Fatalf("stuck state = %v, want 3 attributes", stuck)
	}
	if d, _ := stuck.Distance(vecmat.Vector{15, 1, 990}); d > 5 {
		t.Errorf("stuck state = %v, want near (15,1,990)", stuck)
	}
	if rep.Network.Kind.IsAttack() {
		t.Errorf("network kind = %v", rep.Network.Kind)
	}
}
