//go:build race

package core

// raceEnabled lets timing-sensitive tests skip under the race detector,
// whose instrumentation distorts the ratios they measure.
const raceEnabled = true
