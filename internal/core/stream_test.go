package core

import (
	"testing"
	"time"

	"sensorguard/internal/classify"
	"sensorguard/internal/env"
	"sensorguard/internal/fault"
	"sensorguard/internal/gdi"
	"sensorguard/internal/network"
	"sensorguard/internal/sensor"
	"sensorguard/internal/vecmat"
)

// TestStreamingOperation drives the detector the way a live collector would:
// rounds arrive one at a time from the deployment, the windower closes
// windows as time advances, and each closed window is stepped immediately —
// no batch ProcessTrace. The diagnosis must match the batch path.
func TestStreamingOperation(t *testing.T) {
	plan, err := fault.NewPlan(fault.Schedule{
		Sensor:   6,
		Injector: fault.StuckAt{Value: vecmat.Vector{15, 1}},
		Start:    2 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	field, err := env.GDIProfile(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := network.New(network.Config{
		Sensors:      10,
		SamplePeriod: 5 * time.Minute,
		Noise:        []float64{0.4, 1.0},
		Ranges:       gdi.Ranges(),
		Link:         network.LinkConfig{LossProb: 0.12, MalformProb: 0.002},
		Seed:         1,
	}, field, network.WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}

	det, err := NewDetector(DefaultConfig(keyStates()))
	if err != nil {
		t.Fatal(err)
	}
	wd, err := network.NewWindower(time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	stepWindows := 0
	deliver := func(_ time.Duration, msgs []sensor.Reading) error {
		for _, m := range msgs {
			for _, w := range wd.Add(m) {
				if _, err := det.Step(w); err != nil {
					return err
				}
				stepWindows++
			}
		}
		return nil
	}
	if err := dep.Run(0, 10*24*time.Hour, deliver); err != nil {
		t.Fatal(err)
	}
	if last := wd.Flush(); last != nil {
		if _, err := det.Step(*last); err != nil {
			t.Fatal(err)
		}
		stepWindows++
	}

	if stepWindows < 235 {
		t.Fatalf("streamed %d windows, want ~240", stepWindows)
	}
	rep, err := det.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected {
		t.Fatal("streaming run did not detect the fault")
	}
	if diag, ok := rep.Sensors[6]; !ok || diag.Kind != classify.KindStuckAt {
		t.Errorf("streaming diagnosis = %+v, want stuck-at on sensor 6", rep.Sensors)
	}
	if rep.Network.Kind.IsAttack() {
		t.Errorf("streaming network kind = %v", rep.Network.Kind)
	}
}

// TestStreamingMatchesBatch verifies that the streamed path and the batch
// ProcessTrace path produce the same per-window decisions on the same trace.
func TestStreamingMatchesBatch(t *testing.T) {
	cfg := gdi.DefaultGenerateConfig()
	cfg.Days = 4
	tr, err := gdi.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	batch, err := NewDetector(DefaultConfig(keyStates()))
	if err != nil {
		t.Fatal(err)
	}
	batchSteps, err := batch.ProcessTrace(tr.Readings)
	if err != nil {
		t.Fatal(err)
	}

	stream, err := NewDetector(DefaultConfig(keyStates()))
	if err != nil {
		t.Fatal(err)
	}
	wd, err := network.NewWindower(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	var streamSteps []StepResult
	for _, r := range tr.Readings {
		for _, w := range wd.Add(r) {
			res, err := stream.Step(w)
			if err != nil {
				t.Fatal(err)
			}
			streamSteps = append(streamSteps, res.Clone())
		}
	}
	if last := wd.Flush(); last != nil {
		res, err := stream.Step(*last)
		if err != nil {
			t.Fatal(err)
		}
		streamSteps = append(streamSteps, res.Clone())
	}

	if len(batchSteps) != len(streamSteps) {
		t.Fatalf("window counts differ: batch %d vs stream %d", len(batchSteps), len(streamSteps))
	}
	for i := range batchSteps {
		b, s := batchSteps[i], streamSteps[i]
		if b.Observable != s.Observable || b.Correct != s.Correct || b.Skipped != s.Skipped {
			t.Fatalf("window %d diverged: batch (o=%d c=%d skip=%v) vs stream (o=%d c=%d skip=%v)",
				i, b.Observable, b.Correct, b.Skipped, s.Observable, s.Correct, s.Skipped)
		}
	}
}
