package vecmat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestVectorAddSub(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}

	sum, err := v.Add(w)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if !sum.Equal(Vector{5, 7, 9}, 1e-12) {
		t.Errorf("Add = %v, want (5,7,9)", sum)
	}

	diff, err := w.Sub(v)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if !diff.Equal(Vector{3, 3, 3}, 1e-12) {
		t.Errorf("Sub = %v, want (3,3,3)", diff)
	}
}

func TestVectorDimensionMismatch(t *testing.T) {
	v := Vector{1, 2}
	w := Vector{1, 2, 3}
	if _, err := v.Add(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Add mismatch err = %v, want ErrDimensionMismatch", err)
	}
	if _, err := v.Sub(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Sub mismatch err = %v, want ErrDimensionMismatch", err)
	}
	if _, err := v.Dot(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Dot mismatch err = %v, want ErrDimensionMismatch", err)
	}
	if _, err := v.Distance(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Distance mismatch err = %v, want ErrDimensionMismatch", err)
	}
	if err := v.AddInPlace(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("AddInPlace mismatch err = %v, want ErrDimensionMismatch", err)
	}
}

func TestVectorScaleNormDistance(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Norm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := v.Scale(2); !got.Equal(Vector{6, 8}, 1e-12) {
		t.Errorf("Scale = %v, want (6,8)", got)
	}
	d, err := v.Distance(Vector{0, 0})
	if err != nil {
		t.Fatalf("Distance: %v", err)
	}
	if math.Abs(d-5) > 1e-12 {
		t.Errorf("Distance = %v, want 5", d)
	}
}

func TestVectorCloneIsIndependent(t *testing.T) {
	v := Vector{1, 2}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Errorf("Clone shares backing array: v = %v", v)
	}
}

func TestMean(t *testing.T) {
	got, err := Mean([]Vector{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatalf("Mean: %v", err)
	}
	if !got.Equal(Vector{3, 4}, 1e-12) {
		t.Errorf("Mean = %v, want (3,4)", got)
	}

	if _, err := Mean(nil); err == nil {
		t.Error("Mean(nil) succeeded, want error")
	}
	if _, err := Mean([]Vector{{1}, {1, 2}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Mean ragged err = %v, want ErrDimensionMismatch", err)
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{12, 94}
	if got := v.String(); got != "(12,94)" {
		t.Errorf("String = %q, want (12,94)", got)
	}
}

func TestVectorDotSymmetryProperty(t *testing.T) {
	f := func(a, b [4]float64) bool {
		for _, x := range [][4]float64{a, b} {
			for _, v := range x {
				if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
					return true // skip pathological inputs that overflow
				}
			}
		}
		v, w := Vector(a[:]), Vector(b[:])
		d1, err1 := v.Dot(w)
		d2, err2 := w.Dot(v)
		return err1 == nil && err2 == nil && d1 == d2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorTriangleInequalityProperty(t *testing.T) {
	f := func(a, b, c [3]float64) bool {
		// Guard against pathological float inputs from quick.
		for _, x := range [][3]float64{a, b, c} {
			for _, v := range x {
				if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
					return true
				}
			}
		}
		u, v, w := Vector(a[:]), Vector(b[:]), Vector(c[:])
		duw, _ := u.Distance(w)
		duv, _ := u.Distance(v)
		dvw, _ := v.Distance(w)
		return duw <= duv+dvw+1e-6*(1+duv+dvw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
