package vecmat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if got := m.At(i, j); got != want {
				t.Errorf("I[%d][%d] = %v, want %v", i, j, got, want)
			}
		}
	}
	if !m.IsRowStochastic(1e-12, false) {
		t.Error("identity matrix should be row stochastic")
	}
}

func TestMatrixRowColAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	if err := m.SetRow(0, Vector{1, 2, 3}); err != nil {
		t.Fatalf("SetRow: %v", err)
	}
	if err := m.SetRow(1, Vector{4, 5, 6}); err != nil {
		t.Fatalf("SetRow: %v", err)
	}
	if got := m.Row(1); !got.Equal(Vector{4, 5, 6}, 0) {
		t.Errorf("Row(1) = %v", got)
	}
	if got := m.Col(2); !got.Equal(Vector{3, 6}, 0) {
		t.Errorf("Col(2) = %v", got)
	}
	if err := m.SetRow(0, Vector{1}); err == nil {
		t.Error("SetRow with wrong length succeeded, want error")
	}
}

func TestMatrixAppendRemove(t *testing.T) {
	m := Identity(2)
	r := m.AppendRow()
	if r != 2 || m.Rows() != 3 {
		t.Fatalf("AppendRow: idx=%d rows=%d", r, m.Rows())
	}
	c := m.AppendCol()
	if c != 2 || m.Cols() != 3 {
		t.Fatalf("AppendCol: idx=%d cols=%d", c, m.Cols())
	}
	m.Set(2, 2, 1)
	// Now m is 3x3 identity.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if got := m.At(i, j); got != want {
				t.Fatalf("after grow, m[%d][%d] = %v, want %v", i, j, got, want)
			}
		}
	}

	m.RemoveRow(1)
	m.RemoveCol(1)
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("after remove: %dx%d, want 2x2", m.Rows(), m.Cols())
	}
	if m.At(0, 0) != 1 || m.At(1, 1) != 1 || m.At(0, 1) != 0 || m.At(1, 0) != 0 {
		t.Errorf("after remove, matrix is\n%v", m)
	}
}

func TestMatrixFoldRowInto(t *testing.T) {
	m := NewMatrix(3, 2)
	m.SetRow(0, Vector{1, 0})
	m.SetRow(1, Vector{0, 1})
	m.SetRow(2, Vector{2, 3})
	m.FoldRowInto(0, 2)
	if m.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", m.Rows())
	}
	if got := m.Row(0); !got.Equal(Vector{3, 3}, 0) {
		t.Errorf("folded row = %v, want (3,3)", got)
	}
	// Folding a row into itself is a no-op.
	m.FoldRowInto(1, 1)
	if m.Rows() != 2 {
		t.Errorf("self-fold changed row count to %d", m.Rows())
	}
}

func TestMatrixFoldColInto(t *testing.T) {
	m := NewMatrix(2, 3)
	m.SetRow(0, Vector{1, 2, 4})
	m.SetRow(1, Vector{8, 16, 32})
	m.FoldColInto(1, 2)
	if m.Cols() != 2 {
		t.Fatalf("cols = %d, want 2", m.Cols())
	}
	if got := m.Col(1); !got.Equal(Vector{6, 48}, 0) {
		t.Errorf("folded col = %v, want (6,48)", got)
	}
}

func TestNormalizeRows(t *testing.T) {
	m := NewMatrix(3, 2)
	m.SetRow(0, Vector{2, 2})
	m.SetRow(1, Vector{0, 0}) // never-visited row stays zero
	m.SetRow(2, Vector{1, 3})
	m.NormalizeRows()
	if got := m.Row(0); !got.Equal(Vector{0.5, 0.5}, 1e-12) {
		t.Errorf("row 0 = %v", got)
	}
	if got := m.Row(1); !got.Equal(Vector{0, 0}, 0) {
		t.Errorf("row 1 = %v, want zeros", got)
	}
	if got := m.Row(2); !got.Equal(Vector{0.25, 0.75}, 1e-12) {
		t.Errorf("row 2 = %v", got)
	}
	if !m.IsRowStochastic(1e-9, true) {
		t.Error("normalized matrix should be row stochastic (allowing empty rows)")
	}
	if m.IsRowStochastic(1e-9, false) {
		t.Error("matrix with a zero row must fail strict stochasticity")
	}
}

func TestIsRowStochasticRejectsNegative(t *testing.T) {
	m := NewMatrix(1, 2)
	m.SetRow(0, Vector{1.5, -0.5})
	if m.IsRowStochastic(1e-9, false) {
		t.Error("row with negative entry accepted as stochastic")
	}
}

// Property: NormalizeRows is idempotent and preserves row-stochasticity for
// random non-negative matrices.
func TestNormalizeRowsIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(6), 1+rng.Intn(6)
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rng.Float64()*10)
			}
		}
		m.NormalizeRows()
		if !m.IsRowStochastic(1e-9, true) {
			return false
		}
		before := m.Clone()
		m.NormalizeRows()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if math.Abs(m.At(i, j)-before.At(i, j)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMatrixOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At out of range did not panic")
		}
	}()
	NewMatrix(1, 1).At(1, 0)
}
