package vecmat

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Matrix is a dense row-major matrix. The detector uses it for the HMM
// transition matrix A and the emission matrices B^CO / B^CE, whose dimensions
// change as the model-state set evolves, so rows and columns can be appended
// and removed.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix, the paper's initial value for
// both A and B (§3.2).
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j). It panics on out-of-range indices, mirroring
// slice semantics: indices here are always derived from the registry and an
// out-of-range access is a programming error, not a runtime condition.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("vecmat: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns an independent copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) Vector {
	out := make(Vector, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// SetRow overwrites row i with v.
func (m *Matrix) SetRow(i int, v Vector) error {
	if len(v) != m.cols {
		return fmt.Errorf("set row of length %d in %dx%d matrix: %w", len(v), m.rows, m.cols, ErrDimensionMismatch)
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
	return nil
}

// AppendRow grows the matrix by one zero row and returns its index.
func (m *Matrix) AppendRow() int {
	m.data = append(m.data, make([]float64, m.cols)...)
	m.rows++
	return m.rows - 1
}

// AppendCol grows the matrix by one zero column and returns its index.
func (m *Matrix) AppendCol() int {
	next := make([]float64, m.rows*(m.cols+1))
	for i := 0; i < m.rows; i++ {
		copy(next[i*(m.cols+1):], m.data[i*m.cols:(i+1)*m.cols])
	}
	m.data = next
	m.cols++
	return m.cols - 1
}

// RemoveRow deletes row i, shifting later rows up.
func (m *Matrix) RemoveRow(i int) {
	m.check(i, 0)
	copy(m.data[i*m.cols:], m.data[(i+1)*m.cols:])
	m.data = m.data[:(m.rows-1)*m.cols]
	m.rows--
}

// RemoveCol deletes column j, shifting later columns left.
func (m *Matrix) RemoveCol(j int) {
	m.check(0, j)
	next := make([]float64, m.rows*(m.cols-1))
	for i := 0; i < m.rows; i++ {
		copy(next[i*(m.cols-1):], m.data[i*m.cols:i*m.cols+j])
		copy(next[i*(m.cols-1)+j:], m.data[i*m.cols+j+1:(i+1)*m.cols])
	}
	m.data = next
	m.cols--
}

// FoldRowInto adds row src into row dst and removes row src. The registry
// uses it when two model states merge: the merged state inherits the
// accumulated probability mass of both.
func (m *Matrix) FoldRowInto(dst, src int) {
	if dst == src {
		return
	}
	for j := 0; j < m.cols; j++ {
		m.Set(dst, j, m.At(dst, j)+m.At(src, j))
	}
	m.RemoveRow(src)
}

// FoldColInto adds column src into column dst and removes column src.
func (m *Matrix) FoldColInto(dst, src int) {
	if dst == src {
		return
	}
	for i := 0; i < m.rows; i++ {
		m.Set(i, dst, m.At(i, dst)+m.At(i, src))
	}
	m.RemoveCol(src)
}

// NormalizeRows rescales every row to sum to one. Rows that sum to zero are
// left untouched (they represent states never visited).
func (m *Matrix) NormalizeRows() {
	for i := 0; i < m.rows; i++ {
		var s float64
		for j := 0; j < m.cols; j++ {
			s += m.At(i, j)
		}
		if s <= 0 {
			continue
		}
		for j := 0; j < m.cols; j++ {
			m.Set(i, j, m.At(i, j)/s)
		}
	}
}

// IsRowStochastic reports whether every row is a probability distribution
// within tol: non-negative entries summing to 1. Rows summing to 0 (never
// visited) are accepted when allowEmpty is true.
func (m *Matrix) IsRowStochastic(tol float64, allowEmpty bool) bool {
	for i := 0; i < m.rows; i++ {
		var s float64
		for j := 0; j < m.cols; j++ {
			v := m.At(i, j)
			if v < -tol {
				return false
			}
			s += v
		}
		if allowEmpty && math.Abs(s) <= tol {
			continue
		}
		if math.Abs(s-1) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix with 3-decimal entries, one row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			b.WriteByte('\n')
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.FormatFloat(m.At(i, j), 'f', 3, 64))
		}
	}
	return b.String()
}
