package vecmat

import (
	"math"
	"testing"
)

// permutation builds a permutation-like emission matrix: hidden state i emits
// symbol perm[i] with probability 1.
func permutation(perm []int, cols int) *Matrix {
	m := NewMatrix(len(perm), cols)
	for i, j := range perm {
		m.Set(i, j, 1)
	}
	return m
}

func TestRowsOrthogonalCleanPermutation(t *testing.T) {
	m := permutation([]int{0, 1, 2}, 3)
	th := DefaultOrthoThresholds()
	if v := m.RowsOrthogonal(th, nil); len(v) != 0 {
		t.Errorf("permutation rows flagged: %+v", v)
	}
	if v := m.ColsOrthogonal(th, nil); len(v) != 0 {
		t.Errorf("permutation cols flagged: %+v", v)
	}
}

func TestRowsNotOrthogonalDeletionSignature(t *testing.T) {
	// Two hidden states emitting the same symbol: the Dynamic-Deletion
	// signature of Table 6 (rows (29,56) and (20,71) both emit (20,71)).
	m := NewMatrix(3, 3)
	m.SetRow(0, Vector{0.001, 0.999, 0})
	m.SetRow(1, Vector{0, 1, 0})
	m.SetRow(2, Vector{0, 0, 1})
	th := DefaultOrthoThresholds()
	v := m.RowsOrthogonal(th, nil)
	if len(v) == 0 {
		t.Fatal("deletion signature not flagged by row test")
	}
	found := false
	for _, viol := range v {
		if viol.I == 0 && viol.J == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected violation between rows 0 and 1, got %+v", v)
	}
	// The column test must stay clean in this scenario only if columns are
	// orthogonal; here column 1 receives mass from rows 0 and 1, but each
	// *pair of columns* shares no row mass, so columns remain orthogonal.
	if cv := m.ColsOrthogonal(th, nil); len(cv) != 0 {
		t.Errorf("columns unexpectedly flagged: %+v", cv)
	}
}

func TestColsNotOrthogonalCreationSignature(t *testing.T) {
	// One hidden state splitting mass over two symbols: the
	// Dynamic-Creation signature of Table 7 (row (12,95) = 0.3546/0.6454).
	m := NewMatrix(4, 5)
	m.SetRow(0, Vector{1, 0, 0, 0, 0})
	m.SetRow(1, Vector{0, 1, 0, 0, 0})
	m.SetRow(2, Vector{0, 0, 1, 0, 0})
	m.SetRow(3, Vector{0, 0, 0, 0.3546, 0.6454})
	th := DefaultOrthoThresholds()
	cv := m.ColsOrthogonal(th, nil)
	if len(cv) == 0 {
		t.Fatal("creation signature not flagged by column test")
	}
	found := false
	for _, viol := range cv {
		if viol.I == 3 && viol.J == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected violation between cols 3 and 4, got %+v", cv)
	}
	// Rows: row 3 has self-dot 0.3546²+0.6454² ≈ 0.54 < 0.8, so the row
	// diagonal condition also fires — the paper treats a creation attack
	// as detected through the column condition; both may fire.
	rv := m.RowsOrthogonal(th, nil)
	foundDiag := false
	for _, viol := range rv {
		if viol.I == 3 && viol.J == 3 {
			foundDiag = true
		}
	}
	if !foundDiag {
		t.Errorf("expected diagonal violation on row 3, got %+v", rv)
	}
}

func TestOrthogonalityActiveSubset(t *testing.T) {
	// A spurious never-classified state (row/col 2) violates orthogonality,
	// but restricting to the active subset {0,1} must pass.
	m := NewMatrix(3, 3)
	m.SetRow(0, Vector{1, 0, 0})
	m.SetRow(1, Vector{0, 1, 0})
	m.SetRow(2, Vector{0.5, 0.5, 0})
	th := DefaultOrthoThresholds()
	if v := m.RowsOrthogonal(th, []int{0, 1}); len(v) != 0 {
		t.Errorf("active-subset rows flagged: %+v", v)
	}
	if v := m.RowsOrthogonal(th, nil); len(v) == 0 {
		t.Error("full-set rows should be flagged")
	}
	if v := m.ColsOrthogonal(th, []int{0, 1}); len(v) == 0 {
		t.Error("columns 0 and 1 share row-2 mass and should be flagged")
	}
}

func TestAllOnesColumn(t *testing.T) {
	// Table 3 shape: every hidden state emits the stuck symbol (column 1)
	// with dominant probability.
	m := NewMatrix(5, 3)
	m.SetRow(0, Vector{0, 1, 0})
	m.SetRow(1, Vector{0, 1, 0})
	m.SetRow(2, Vector{0, 0.9, 0.1})
	m.SetRow(3, Vector{0.33, 0.67, 0})
	m.SetRow(4, Vector{0.01, 0.99, 0})
	col, ok := m.AllOnesColumn(nil, 0.5)
	if !ok || col != 1 {
		t.Errorf("AllOnesColumn = (%d,%v), want (1,true)", col, ok)
	}

	// A one-to-one (calibration-like) matrix must not match.
	p := permutation([]int{0, 1, 2}, 3)
	if _, ok := p.AllOnesColumn(nil, 0.5); ok {
		t.Error("permutation matrix matched stuck-at signature")
	}

	// Empty active set cannot match.
	if _, ok := m.AllOnesColumn([]int{}, 0.5); ok {
		t.Error("empty active set matched stuck-at signature")
	}
}

func TestDominantColAndColMass(t *testing.T) {
	m := NewMatrix(2, 3)
	m.SetRow(0, Vector{0.2, 0.7, 0.1})
	m.SetRow(1, Vector{0.6, 0.3, 0.1})
	if c, mass := m.DominantCol(0); c != 1 || math.Abs(mass-0.7) > 1e-12 {
		t.Errorf("DominantCol(0) = (%d,%v)", c, mass)
	}
	if got := m.ColMass(2); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("ColMass(2) = %v, want 0.2", got)
	}
	zero := NewMatrix(2, 2)
	if c, _ := zero.DominantCol(0); c != -1 {
		t.Errorf("DominantCol on zero row = %d, want -1", c)
	}
}

func TestMaxAbs(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, -3)
	m.Set(1, 0, 2)
	if got := m.MaxAbs(); got != 3 {
		t.Errorf("MaxAbs = %v, want 3", got)
	}
}
