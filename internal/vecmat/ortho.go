package vecmat

import "math"

// The structural classifier of the paper (§3.4) decides between error and
// attack types by testing whether the rows and columns of an HMM emission
// matrix B are (approximately) orthogonal:
//
//	∀i,j: Σ_k b_ik·b_jk = δ_ij   (rows)
//	∀i,j: Σ_k b_ki·b_kj = δ_ij   (columns)
//
// The experimental section uses thresholds rather than exact equality
// (Σ < 0.1 for i≠j, Σ > 0.8 for i=j); OrthoThresholds captures them.

// OrthoThresholds parameterises the approximate orthogonality test.
type OrthoThresholds struct {
	// MaxOffDiag is the largest allowed dot product between two distinct
	// rows (columns). The paper's evaluation uses 0.1.
	MaxOffDiag float64
	// MinDiag is the smallest allowed self-dot-product of a row. The
	// paper's evaluation uses 0.8. It only applies to rows (which are
	// probability distributions); column self-products carry no such
	// normalisation and are not tested.
	MinDiag float64
}

// DefaultOrthoThresholds mirrors the thresholds reported in §4.1.
func DefaultOrthoThresholds() OrthoThresholds {
	return OrthoThresholds{MaxOffDiag: 0.1, MinDiag: 0.8}
}

// OrthoViolation describes one failed orthogonality condition: the pair of
// rows or columns whose dot product exceeded the threshold.
type OrthoViolation struct {
	I, J int     // indices of the offending pair (I < J), or I == J for a diagonal failure
	Dot  float64 // the offending dot product
}

// RowsOrthogonal tests the row condition over the subset of row indices in
// active (every row index when active is nil). It returns all violations;
// an empty slice means the rows are orthogonal within the thresholds.
func (m *Matrix) RowsOrthogonal(th OrthoThresholds, active []int) []OrthoViolation {
	idx := activeIndices(active, m.rows)
	var out []OrthoViolation
	for a := 0; a < len(idx); a++ {
		i := idx[a]
		if d := m.rowDot(i, i); d < th.MinDiag {
			out = append(out, OrthoViolation{I: i, J: i, Dot: d})
		}
		for b := a + 1; b < len(idx); b++ {
			j := idx[b]
			if d := m.rowDot(i, j); d > th.MaxOffDiag {
				out = append(out, OrthoViolation{I: i, J: j, Dot: d})
			}
		}
	}
	return out
}

// ColsOrthogonal tests the column condition over the subset of column
// indices in active (every column when active is nil). As in the paper, raw
// dot products are used: with row-stochastic B every entry is at most one,
// so a split row (the creation signature) yields a cross product well above
// the threshold while estimation noise stays below it.
func (m *Matrix) ColsOrthogonal(th OrthoThresholds, active []int) []OrthoViolation {
	idx := activeIndices(active, m.cols)
	var out []OrthoViolation
	for a := 0; a < len(idx); a++ {
		for b := a + 1; b < len(idx); b++ {
			i, j := idx[a], idx[b]
			if d := m.colDot(i, j); d > th.MaxOffDiag {
				out = append(out, OrthoViolation{I: i, J: j, Dot: d})
			}
		}
	}
	return out
}

func (m *Matrix) rowDot(i, j int) float64 {
	var s float64
	for k := 0; k < m.cols; k++ {
		s += m.At(i, k) * m.At(j, k)
	}
	return s
}

func (m *Matrix) colDot(i, j int) float64 {
	var s float64
	for k := 0; k < m.rows; k++ {
		s += m.At(k, i) * m.At(k, j)
	}
	return s
}

func activeIndices(active []int, n int) []int {
	if active != nil {
		return active
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// DominantCol returns, for row i, the column with the largest entry and that
// entry's value. The classifier uses it to associate a hidden state with the
// symbol it most often emits (footnote 6 of the paper).
func (m *Matrix) DominantCol(i int) (col int, mass float64) {
	col = -1
	for j := 0; j < m.cols; j++ {
		if v := m.At(i, j); v > mass {
			mass, col = v, j
		}
	}
	return col, mass
}

// ColMass returns the total probability mass of column j, i.e. Σ_i b_ij.
func (m *Matrix) ColMass(j int) float64 {
	var s float64
	for i := 0; i < m.rows; i++ {
		s += m.At(i, j)
	}
	return s
}

// AllOnesColumn tests the stuck-at signature of Eq. (7): a single column k
// whose entries are ~1 on every active row while all other columns are ~0.
// It returns the column index and true when such a column exists. minOne is
// the per-entry threshold for "approximately one" (the paper's sensor-6
// matrix has entries down to 0.67 on one row; the evaluation treats it as
// "approximately all ones", so callers typically pass ~0.5 and require the
// column to dominate every row instead of demanding exact ones).
func (m *Matrix) AllOnesColumn(active []int, minOne float64) (int, bool) {
	rows := activeIndices(active, m.rows)
	if len(rows) == 0 {
		return -1, false
	}
	col := -1
	for _, i := range rows {
		c, mass := m.DominantCol(i)
		if c < 0 || mass < minOne {
			return -1, false
		}
		if col == -1 {
			col = c
		} else if c != col {
			return -1, false
		}
	}
	return col, true
}

// MaxAbs returns the largest absolute entry of the matrix.
func (m *Matrix) MaxAbs() float64 {
	var s float64
	for _, v := range m.data {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}
