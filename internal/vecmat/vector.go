// Package vecmat provides the small dense linear-algebra primitives the
// detector is built on: attribute vectors, dense matrices, stochastic-matrix
// maintenance, and the row/column orthogonality tests used by the structural
// classifier (paper §3.4).
//
// Everything here is deliberately simple and allocation-conscious: the
// detector runs one update per observation window, on matrices whose
// dimension is the number of model states (single digits in the paper's
// evaluation), so clarity wins over asymptotics.
package vecmat

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Vector is a point in attribute space (e.g. ⟨temperature, humidity⟩).
type Vector []float64

// ErrDimensionMismatch is returned by vector and matrix operations whose
// operands do not share the required shape.
var ErrDimensionMismatch = errors.New("vecmat: dimension mismatch")

// NewVector returns a zero vector with n components.
func NewVector(n int) Vector {
	return make(Vector, n)
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add returns v + w.
func (v Vector) Add(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("add %d-vector to %d-vector: %w", len(w), len(v), ErrDimensionMismatch)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out, nil
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("subtract %d-vector from %d-vector: %w", len(w), len(v), ErrDimensionMismatch)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out, nil
}

// Scale returns k·v.
func (v Vector) Scale(k float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = k * v[i]
	}
	return out
}

// AddInPlace accumulates w into v. It returns ErrDimensionMismatch when the
// lengths differ.
func (v Vector) AddInPlace(w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("accumulate %d-vector into %d-vector: %w", len(w), len(v), ErrDimensionMismatch)
	}
	for i := range v {
		v[i] += w[i]
	}
	return nil
}

// Dot returns the inner product ⟨v, w⟩.
func (v Vector) Dot(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("dot %d-vector with %d-vector: %w", len(w), len(v), ErrDimensionMismatch)
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s, nil
}

// Norm returns the Euclidean norm ‖v‖₂.
func (v Vector) Norm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Distance returns the Euclidean distance ‖v - w‖₂, the metric used by the
// nearest-state queries of Eqs. (2) and (3).
func (v Vector) Distance(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("distance between %d-vector and %d-vector: %w", len(w), len(v), ErrDimensionMismatch)
	}
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}

// SquaredDistance returns ‖v - w‖₂² — the comparison key of the detector's
// nearest-state queries, which only need the argmin and therefore skip the
// square root of Distance on the hot path.
func (v Vector) SquaredDistance(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("distance between %d-vector and %d-vector: %w", len(w), len(v), ErrDimensionMismatch)
	}
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return s, nil
}

// Mean returns the component-wise mean of the given vectors. It returns an
// error when vs is empty or the vectors disagree in dimension.
func Mean(vs []Vector) (Vector, error) {
	if len(vs) == 0 {
		return nil, errors.New("vecmat: mean of zero vectors")
	}
	out := make(Vector, len(vs[0]))
	for _, v := range vs {
		if err := out.AddInPlace(v); err != nil {
			return nil, err
		}
	}
	inv := 1.0 / float64(len(vs))
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// Equal reports whether v and w agree component-wise within tol.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the vector in the paper's tuple notation, e.g. "(12,94)".
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(x, 'g', 4, 64))
	}
	b.WriteByte(')')
	return b.String()
}
