// Package cluster implements the paper's Model State Identification module
// (§3.1): an on-line statistical clustering algorithm that maintains the set
// of model states S = {s_1..s_M} describing the physical conditions
// traversed by the environment and by error/attack data.
//
// States carry stable integer IDs so that the HMM and Markov-chain modules
// can keep their matrices aligned with the evolving state set: the clusterer
// reports every structural change (spawn or merge) as an Event that
// downstream estimators replay onto their own data structures.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"sensorguard/internal/vecmat"
)

// State is one model state: a centroid in attribute space with a stable ID.
type State struct {
	// ID is stable for the lifetime of the state and never reused.
	ID int
	// Centroid is the state's current position (Eq. 6 EWMA of the
	// observations mapped to it).
	Centroid vecmat.Vector
	// Weight counts how many observations have ever been mapped to the
	// state; the classifier uses it to suppress spurious states.
	Weight float64
}

// EventKind distinguishes structural changes to the state set.
type EventKind int

// Structural event kinds.
const (
	// EventSpawn reports a newly created state.
	EventSpawn EventKind = iota + 1
	// EventMerge reports that state From was folded into state Into.
	EventMerge
)

// Event describes one structural change to the state set. Downstream
// estimators must apply events in order.
type Event struct {
	Kind EventKind
	// ID is the spawned state for EventSpawn.
	ID int
	// Into and From identify the surviving and absorbed states for
	// EventMerge.
	Into, From int
}

// String renders the event for logs.
func (e Event) String() string {
	switch e.Kind {
	case EventSpawn:
		return fmt.Sprintf("spawn(%d)", e.ID)
	case EventMerge:
		return fmt.Sprintf("merge(%d<-%d)", e.Into, e.From)
	default:
		return "event(?)"
	}
}

// Config parameterises the clusterer.
type Config struct {
	// Alpha is the learning factor of the centroid update (Eq. 6),
	// in (0,1). The paper's evaluation uses 0.10.
	Alpha float64
	// MergeDistance: two states closer than this merge into one.
	MergeDistance float64
	// SpawnDistance: an observation farther than this from every state
	// spawns a new state at the observation.
	SpawnDistance float64
	// CaptureDistance: an observation farther than this from its nearest
	// state (but within SpawnDistance) is treated as ambiguous — it
	// neither updates the state (Eq. 6) nor spawns a new one. Without
	// this annulus, a gradual trajectory between two dwell points drags
	// a single state along the path and fuses structure that should stay
	// separate. Zero disables the annulus (capture = spawn).
	CaptureDistance float64
	// MaxStates caps the state count; when reached, no states spawn.
	// Zero means no cap.
	MaxStates int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("cluster: alpha %v outside (0,1)", c.Alpha)
	}
	if c.MergeDistance < 0 || c.SpawnDistance <= 0 {
		return errors.New("cluster: distances must be positive")
	}
	if c.MergeDistance >= c.SpawnDistance {
		return errors.New("cluster: merge distance must be below spawn distance")
	}
	if c.CaptureDistance != 0 && (c.CaptureDistance <= c.MergeDistance || c.CaptureDistance > c.SpawnDistance) {
		return errors.New("cluster: capture distance must lie in (merge, spawn]")
	}
	if c.MaxStates < 0 {
		return errors.New("cluster: MaxStates must be non-negative")
	}
	return nil
}

// Set is the evolving set of model states. It is not safe for concurrent
// use; the detector drives it from a single goroutine.
type Set struct {
	cfg     Config
	dim     int
	states  []State
	nextID  int
	adapts  int
	pending []pendingSpawn
	spawned int
	merged  int
}

// pendingSpawn is a far observation waiting for confirmation: a new state
// spawns only when a second far observation lands within MergeDistance of a
// pending one in a *later* window. One-off outliers (e.g. malformed packets)
// never repeat at the same spot and therefore never pollute the state set,
// while genuine fault/attack dwells confirm within a window or two.
type pendingSpawn struct {
	point vecmat.Vector
	adapt int // Adapt-call ordinal at which the point was seen
}

// pendingTTL is how many Adapt calls a pending spawn survives unconfirmed.
const pendingTTL = 12

// New builds a state set seeded with the given initial centroids (the paper
// seeds with either random states or an offline clustering of historical
// data — see KMeans). dim is the attribute dimensionality.
func New(cfg Config, dim int, initial []vecmat.Vector) (*Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dim <= 0 {
		return nil, errors.New("cluster: dimension must be positive")
	}
	s := &Set{cfg: cfg, dim: dim}
	for _, c := range initial {
		if len(c) != dim {
			return nil, fmt.Errorf("cluster: initial centroid %v has dimension %d, want %d", c, len(c), dim)
		}
		s.states = append(s.states, State{ID: s.nextID, Centroid: c.Clone()})
		s.nextID++
	}
	return s, nil
}

// Len returns the current number of states.
func (s *Set) Len() int { return len(s.states) }

// Dim returns the attribute dimensionality.
func (s *Set) Dim() int { return s.dim }

// States returns a copy of the current states, ordered by ID.
func (s *Set) States() []State {
	out := make([]State, len(s.states))
	for i, st := range s.states {
		out[i] = State{ID: st.ID, Centroid: st.Centroid.Clone(), Weight: st.Weight}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the state with the given ID.
func (s *Set) ByID(id int) (State, bool) {
	for _, st := range s.states {
		if st.ID == id {
			return State{ID: st.ID, Centroid: st.Centroid.Clone(), Weight: st.Weight}, true
		}
	}
	return State{}, false
}

// Nearest returns the ID of the state closest to p and the distance to it
// (Eqs. 2 and 3). It returns an error when the set is empty or p has the
// wrong dimension.
func (s *Set) Nearest(p vecmat.Vector) (id int, dist float64, err error) {
	if len(s.states) == 0 {
		return 0, 0, errors.New("cluster: empty state set")
	}
	best, bestDist := -1, 0.0
	for i := range s.states {
		d, derr := s.states[i].Centroid.Distance(p)
		if derr != nil {
			return 0, 0, derr
		}
		if best == -1 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return s.states[best].ID, bestDist, nil
}

// Assign maps each observation to its nearest state (Eq. 3), returning one
// state ID per observation.
func (s *Set) Assign(points []vecmat.Vector) ([]int, error) {
	out := make([]int, len(points))
	for i, p := range points {
		id, _, err := s.Nearest(p)
		if err != nil {
			return nil, err
		}
		out[i] = id
	}
	return out, nil
}

// Adapt performs the end-of-window update. Spawn checks run first, against
// the *pre-update* state set: an observation too far from every existing
// state (and, when meanPoint is non-nil, the window mean — see DESIGN.md §2)
// becomes a new state rather than being absorbed into — and dragging — an
// unrelated one. Observations are then re-assigned against the post-spawn
// set and the Eq. (5)–(6) centroid adaptation runs, followed by merge
// checks. It returns the structural events in the order they must be
// applied downstream.
func (s *Set) Adapt(points []vecmat.Vector, meanPoint vecmat.Vector) ([]Event, error) {
	var events []Event

	// Spawn pass: a far point spawns a state only when it confirms a
	// pending far point from an earlier window; otherwise it becomes
	// pending itself. Later far points in the same window see earlier
	// spawns, so a cluster of far points yields one state, not one per
	// point.
	s.adapts++
	candidates := points
	if meanPoint != nil {
		candidates = append(append(make([]vecmat.Vector, 0, len(points)+1), points...), meanPoint)
	}
	for _, p := range candidates {
		if s.cfg.MaxStates > 0 && len(s.states) >= s.cfg.MaxStates {
			break
		}
		_, d, err := s.Nearest(p)
		if err != nil {
			return nil, err
		}
		if d <= s.cfg.SpawnDistance {
			continue
		}
		if i := s.confirmPending(p); i >= 0 {
			mid, merr := vecmat.Mean([]vecmat.Vector{p, s.pending[i].point})
			if merr != nil {
				return nil, merr
			}
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			id := s.spawn(mid)
			events = append(events, Event{Kind: EventSpawn, ID: id})
		} else {
			s.pending = append(s.pending, pendingSpawn{point: p.Clone(), adapt: s.adapts})
		}
	}
	s.expirePending()

	// Eq. (5): group observations per (post-spawn) state; Eq. (6): EWMA
	// update. Points outside the capture annulus are ambiguous and do
	// not contribute.
	capture := s.cfg.CaptureDistance
	if capture == 0 {
		capture = s.cfg.SpawnDistance
	}
	sums := make(map[int]vecmat.Vector, len(s.states))
	counts := make(map[int]int, len(s.states))
	for _, p := range points {
		id, dist, err := s.Nearest(p)
		if err != nil {
			return nil, err
		}
		if dist > capture {
			continue
		}
		if sums[id] == nil {
			sums[id] = vecmat.NewVector(s.dim)
		}
		if err := sums[id].AddInPlace(p); err != nil {
			return nil, err
		}
		counts[id]++
	}
	for i := range s.states {
		st := &s.states[i]
		n := counts[st.ID]
		if n == 0 {
			continue
		}
		mean := sums[st.ID].Scale(1 / float64(n))
		for d := 0; d < s.dim; d++ {
			st.Centroid[d] = (1-s.cfg.Alpha)*st.Centroid[d] + s.cfg.Alpha*mean[d]
		}
		st.Weight += float64(n)
	}

	// Merge: fold together states that drifted too close. The heavier
	// state survives so that long-lived structure keeps its identity.
	events = append(events, s.mergeClose()...)
	return events, nil
}

// confirmPending returns the index of a pending spawn from an earlier
// window within the confirmation radius of p, or -1. Confirmation uses the
// capture distance (falling back to merge distance) so a recurring dwell
// confirms even with window-to-window jitter.
func (s *Set) confirmPending(p vecmat.Vector) int {
	radius := s.cfg.CaptureDistance
	if radius == 0 {
		radius = s.cfg.MergeDistance
	}
	for i, pd := range s.pending {
		if pd.adapt == s.adapts {
			continue // same window: not independent confirmation
		}
		d, err := pd.point.Distance(p)
		if err == nil && d <= radius {
			return i
		}
	}
	return -1
}

func (s *Set) expirePending() {
	kept := s.pending[:0]
	for _, pd := range s.pending {
		if s.adapts-pd.adapt < pendingTTL {
			kept = append(kept, pd)
		}
	}
	s.pending = kept
}

func (s *Set) spawn(p vecmat.Vector) int {
	id := s.nextID
	s.nextID++
	s.states = append(s.states, State{ID: id, Centroid: p.Clone(), Weight: 1})
	s.spawned++
	return id
}

func (s *Set) mergeClose() []Event {
	var events []Event
	for {
		merged := false
		for i := 0; i < len(s.states) && !merged; i++ {
			for j := i + 1; j < len(s.states) && !merged; j++ {
				d, err := s.states[i].Centroid.Distance(s.states[j].Centroid)
				if err != nil || d > s.cfg.MergeDistance {
					continue
				}
				into, from := i, j
				if s.states[from].Weight > s.states[into].Weight {
					into, from = from, into
				}
				events = append(events, s.merge(into, from))
				merged = true
			}
		}
		if !merged {
			return events
		}
	}
}

// merge folds state index from into state index into: the surviving centroid
// is the weight-weighted average and the weights add.
func (s *Set) merge(into, from int) Event {
	a, b := &s.states[into], &s.states[from]
	total := a.Weight + b.Weight
	if total > 0 {
		for d := 0; d < s.dim; d++ {
			a.Centroid[d] = (a.Centroid[d]*a.Weight + b.Centroid[d]*b.Weight) / total
		}
	}
	a.Weight = total
	ev := Event{Kind: EventMerge, Into: a.ID, From: b.ID}
	s.states = append(s.states[:from], s.states[from+1:]...)
	s.merged++
	return ev
}

// SpawnCount returns the total number of states ever spawned (initial seed
// states excluded).
func (s *Set) SpawnCount() int { return s.spawned }

// MergeCount returns the total number of merge events so far.
func (s *Set) MergeCount() int { return s.merged }

// TotalWeight returns the sum of all state weights (total observations
// absorbed so far).
func (s *Set) TotalWeight() float64 {
	var t float64
	for _, st := range s.states {
		t += st.Weight
	}
	return t
}
