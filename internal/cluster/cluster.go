// Package cluster implements the paper's Model State Identification module
// (§3.1): an on-line statistical clustering algorithm that maintains the set
// of model states S = {s_1..s_M} describing the physical conditions
// traversed by the environment and by error/attack data.
//
// States carry stable integer IDs so that the HMM and Markov-chain modules
// can keep their matrices aligned with the evolving state set: the clusterer
// reports every structural change (spawn or merge) as an Event that
// downstream estimators replay onto their own data structures.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sensorguard/internal/vecmat"
)

// State is one model state: a centroid in attribute space with a stable ID.
type State struct {
	// ID is stable for the lifetime of the state and never reused.
	ID int
	// Centroid is the state's current position (Eq. 6 EWMA of the
	// observations mapped to it).
	Centroid vecmat.Vector
	// Weight counts how many observations have ever been mapped to the
	// state; the classifier uses it to suppress spurious states.
	Weight float64
}

// EventKind distinguishes structural changes to the state set.
type EventKind int

// Structural event kinds.
const (
	// EventSpawn reports a newly created state.
	EventSpawn EventKind = iota + 1
	// EventMerge reports that state From was folded into state Into.
	EventMerge
)

// Event describes one structural change to the state set. Downstream
// estimators must apply events in order.
type Event struct {
	Kind EventKind
	// ID is the spawned state for EventSpawn.
	ID int
	// Into and From identify the surviving and absorbed states for
	// EventMerge.
	Into, From int
}

// String renders the event for logs.
func (e Event) String() string {
	switch e.Kind {
	case EventSpawn:
		return fmt.Sprintf("spawn(%d)", e.ID)
	case EventMerge:
		return fmt.Sprintf("merge(%d<-%d)", e.Into, e.From)
	default:
		return "event(?)"
	}
}

// Config parameterises the clusterer.
type Config struct {
	// Alpha is the learning factor of the centroid update (Eq. 6),
	// in (0,1). The paper's evaluation uses 0.10.
	Alpha float64
	// MergeDistance: two states closer than this merge into one.
	MergeDistance float64
	// SpawnDistance: an observation farther than this from every state
	// spawns a new state at the observation.
	SpawnDistance float64
	// CaptureDistance: an observation farther than this from its nearest
	// state (but within SpawnDistance) is treated as ambiguous — it
	// neither updates the state (Eq. 6) nor spawns a new one. Without
	// this annulus, a gradual trajectory between two dwell points drags
	// a single state along the path and fuses structure that should stay
	// separate. Zero disables the annulus (capture = spawn).
	CaptureDistance float64
	// MaxStates caps the state count; when reached, no states spawn.
	// Zero means no cap.
	MaxStates int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("cluster: alpha %v outside (0,1)", c.Alpha)
	}
	if c.MergeDistance < 0 || c.SpawnDistance <= 0 {
		return errors.New("cluster: distances must be positive")
	}
	if c.MergeDistance >= c.SpawnDistance {
		return errors.New("cluster: merge distance must be below spawn distance")
	}
	if c.CaptureDistance != 0 && (c.CaptureDistance <= c.MergeDistance || c.CaptureDistance > c.SpawnDistance) {
		return errors.New("cluster: capture distance must lie in (merge, spawn]")
	}
	if c.MaxStates < 0 {
		return errors.New("cluster: MaxStates must be non-negative")
	}
	return nil
}

// Set is the evolving set of model states. It is not safe for concurrent
// use; the detector drives it from a single goroutine.
type Set struct {
	cfg     Config
	dim     int
	states  []State
	nextID  int
	adapts  int
	pending []pendingSpawn
	spawned int
	merged  int

	// Adapt scratch, reused across windows so the steady-state per-window
	// update allocates nothing: per-state accumulation buffers (indexed like
	// states) and the spawn-candidate slice.
	scratchSums   []vecmat.Vector
	scratchCounts []int
	scratchCand   []vecmat.Vector
}

// pendingSpawn is a far observation waiting for confirmation: a new state
// spawns only when a second far observation lands within MergeDistance of a
// pending one in a *later* window. One-off outliers (e.g. malformed packets)
// never repeat at the same spot and therefore never pollute the state set,
// while genuine fault/attack dwells confirm within a window or two.
type pendingSpawn struct {
	point vecmat.Vector
	adapt int // Adapt-call ordinal at which the point was seen
}

// pendingTTL is how many Adapt calls a pending spawn survives unconfirmed.
const pendingTTL = 12

// New builds a state set seeded with the given initial centroids (the paper
// seeds with either random states or an offline clustering of historical
// data — see KMeans). dim is the attribute dimensionality.
func New(cfg Config, dim int, initial []vecmat.Vector) (*Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dim <= 0 {
		return nil, errors.New("cluster: dimension must be positive")
	}
	s := &Set{cfg: cfg, dim: dim}
	for _, c := range initial {
		if len(c) != dim {
			return nil, fmt.Errorf("cluster: initial centroid %v has dimension %d, want %d", c, len(c), dim)
		}
		s.states = append(s.states, State{ID: s.nextID, Centroid: c.Clone()})
		s.nextID++
	}
	return s, nil
}

// Len returns the current number of states.
func (s *Set) Len() int { return len(s.states) }

// Dim returns the attribute dimensionality.
func (s *Set) Dim() int { return s.dim }

// States returns a copy of the current states, ordered by ID.
func (s *Set) States() []State {
	out := make([]State, len(s.states))
	for i, st := range s.states {
		out[i] = State{ID: st.ID, Centroid: st.Centroid.Clone(), Weight: st.Weight}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the state with the given ID.
func (s *Set) ByID(id int) (State, bool) {
	for _, st := range s.states {
		if st.ID == id {
			return State{ID: st.ID, Centroid: st.Centroid.Clone(), Weight: st.Weight}, true
		}
	}
	return State{}, false
}

// Nearest returns the ID of the state closest to p and the Euclidean
// distance to it (Eqs. 2 and 3). It returns an error when the set is empty
// or p has the wrong dimension; on error the returned id is -1, which is
// never a valid state ID — callers that read the id before checking the
// error cannot mistake it for the first seeded state (ID 0).
//
// The dimension and emptiness checks run once per call; the per-state loop
// compares squared distances and takes a single square root at the end.
func (s *Set) Nearest(p vecmat.Vector) (id int, dist float64, err error) {
	if err := s.check(p); err != nil {
		return -1, 0, err
	}
	best, d2 := s.nearestSq(p)
	return s.states[best].ID, math.Sqrt(d2), nil
}

// check validates the emptiness and dimension preconditions of the
// nearest-state queries once, so the inner loops can run unchecked.
func (s *Set) check(p vecmat.Vector) error {
	if len(s.states) == 0 {
		return errors.New("cluster: empty state set")
	}
	if len(p) != s.dim {
		return fmt.Errorf("cluster: query %d-vector against %d-dimensional states: %w",
			len(p), s.dim, vecmat.ErrDimensionMismatch)
	}
	return nil
}

// nearestSq returns the index (not ID) of the state closest to p and the
// squared distance to it. Preconditions (non-empty set, matching dimension)
// must have been checked by the caller.
func (s *Set) nearestSq(p vecmat.Vector) (idx int, d2 float64) {
	best, bestD2 := 0, sqDist(s.states[0].Centroid, p)
	for i := 1; i < len(s.states); i++ {
		if d := sqDist(s.states[i].Centroid, p); d < bestD2 {
			best, bestD2 = i, d
		}
	}
	return best, bestD2
}

// sqDist is the unchecked squared Euclidean distance between two vectors of
// equal length (the Set invariant guarantees centroids match s.dim). The
// two-attribute case is unrolled: GDI-style deployments sense (temperature,
// humidity), and this sits innermost in every per-observation nearest-state
// scan.
func sqDist(a, b vecmat.Vector) float64 {
	if len(a) == 2 && len(b) == 2 {
		dx := a[0] - b[0]
		dy := a[1] - b[1]
		return dx*dx + dy*dy
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// DistanceTo returns the Euclidean distance from state id's centroid to p,
// without copying the centroid. It reports false when the state does not
// exist or p has the wrong dimension.
func (s *Set) DistanceTo(id int, p vecmat.Vector) (float64, bool) {
	if len(p) != s.dim {
		return 0, false
	}
	for i := range s.states {
		if s.states[i].ID == id {
			return math.Sqrt(sqDist(s.states[i].Centroid, p)), true
		}
	}
	return 0, false
}

// Assign maps each observation to its nearest state (Eq. 3), returning one
// state ID per observation. On error the returned slice is nil.
func (s *Set) Assign(points []vecmat.Vector) ([]int, error) {
	return s.AssignTo(points, nil)
}

// AssignTo is Assign writing into dst (grown as needed), so steady-state
// callers can reuse one buffer across windows. It returns dst resliced to
// len(points); on error the result is nil.
func (s *Set) AssignTo(points []vecmat.Vector, dst []int) ([]int, error) {
	for _, p := range points {
		if err := s.check(p); err != nil {
			return nil, err
		}
	}
	dst = dst[:0]
	for _, p := range points {
		idx, _ := s.nearestSq(p)
		dst = append(dst, s.states[idx].ID)
	}
	return dst, nil
}

// Adapt performs the end-of-window update. Spawn checks run first, against
// the *pre-update* state set: an observation too far from every existing
// state (and, when meanPoint is non-nil, the window mean — see DESIGN.md §2)
// becomes a new state rather than being absorbed into — and dragging — an
// unrelated one. Observations are then re-assigned against the post-spawn
// set and the Eq. (5)–(6) centroid adaptation runs, followed by merge
// checks. It returns the structural events in the order they must be
// applied downstream.
func (s *Set) Adapt(points []vecmat.Vector, meanPoint vecmat.Vector) ([]Event, error) {
	var events []Event

	// Preconditions once, up front: the spawn and accumulation loops below
	// run unchecked squared-distance queries.
	for _, p := range points {
		if err := s.check(p); err != nil {
			return nil, err
		}
	}
	if meanPoint != nil {
		if err := s.check(meanPoint); err != nil {
			return nil, err
		}
	}

	// Spawn pass: a far point spawns a state only when it confirms a
	// pending far point from an earlier window; otherwise it becomes
	// pending itself. Later far points in the same window see earlier
	// spawns, so a cluster of far points yields one state, not one per
	// point.
	s.adapts++
	candidates := points
	if meanPoint != nil {
		s.scratchCand = append(append(s.scratchCand[:0], points...), meanPoint)
		candidates = s.scratchCand
	}
	spawnSq := s.cfg.SpawnDistance * s.cfg.SpawnDistance
	for _, p := range candidates {
		if s.cfg.MaxStates > 0 && len(s.states) >= s.cfg.MaxStates {
			break
		}
		if _, d2 := s.nearestSq(p); d2 <= spawnSq {
			continue
		}
		if i := s.confirmPending(p); i >= 0 {
			mid, merr := vecmat.Mean([]vecmat.Vector{p, s.pending[i].point})
			if merr != nil {
				return nil, merr
			}
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			id := s.spawn(mid)
			events = append(events, Event{Kind: EventSpawn, ID: id})
		} else {
			s.pending = append(s.pending, pendingSpawn{point: p.Clone(), adapt: s.adapts})
		}
	}
	s.expirePending()

	// Eq. (5): group observations per (post-spawn) state; Eq. (6): EWMA
	// update. Points outside the capture annulus are ambiguous and do
	// not contribute. Accumulation goes into per-state scratch buffers
	// (indexed like s.states) reused across windows.
	capture := s.cfg.CaptureDistance
	if capture == 0 {
		capture = s.cfg.SpawnDistance
	}
	captureSq := capture * capture
	for len(s.scratchSums) < len(s.states) {
		s.scratchSums = append(s.scratchSums, vecmat.NewVector(s.dim))
	}
	if cap(s.scratchCounts) < len(s.states) {
		s.scratchCounts = make([]int, len(s.states))
	}
	s.scratchCounts = s.scratchCounts[:len(s.states)]
	for i := 0; i < len(s.states); i++ {
		s.scratchCounts[i] = 0
		sum := s.scratchSums[i]
		for d := range sum {
			sum[d] = 0
		}
	}
	for _, p := range points {
		idx, d2 := s.nearestSq(p)
		if d2 > captureSq {
			continue
		}
		sum := s.scratchSums[idx]
		for d := 0; d < s.dim; d++ {
			sum[d] += p[d]
		}
		s.scratchCounts[idx]++
	}
	for i := range s.states {
		st := &s.states[i]
		n := s.scratchCounts[i]
		if n == 0 {
			continue
		}
		inv := 1 / float64(n)
		for d := 0; d < s.dim; d++ {
			mean := s.scratchSums[i][d] * inv
			st.Centroid[d] = (1-s.cfg.Alpha)*st.Centroid[d] + s.cfg.Alpha*mean
		}
		st.Weight += float64(n)
	}

	// Merge: fold together states that drifted too close. The heavier
	// state survives so that long-lived structure keeps its identity.
	events = append(events, s.mergeClose()...)
	return events, nil
}

// confirmPending returns the index of a pending spawn from an earlier
// window within the confirmation radius of p, or -1. Confirmation uses the
// capture distance (falling back to merge distance) so a recurring dwell
// confirms even with window-to-window jitter.
func (s *Set) confirmPending(p vecmat.Vector) int {
	radius := s.cfg.CaptureDistance
	if radius == 0 {
		radius = s.cfg.MergeDistance
	}
	for i, pd := range s.pending {
		if pd.adapt == s.adapts {
			continue // same window: not independent confirmation
		}
		d, err := pd.point.Distance(p)
		if err == nil && d <= radius {
			return i
		}
	}
	return -1
}

func (s *Set) expirePending() {
	kept := s.pending[:0]
	for _, pd := range s.pending {
		if s.adapts-pd.adapt < pendingTTL {
			kept = append(kept, pd)
		}
	}
	s.pending = kept
}

func (s *Set) spawn(p vecmat.Vector) int {
	id := s.nextID
	s.nextID++
	s.states = append(s.states, State{ID: id, Centroid: p.Clone(), Weight: 1})
	s.spawned++
	return id
}

func (s *Set) mergeClose() []Event {
	var events []Event
	mergeSq := s.cfg.MergeDistance * s.cfg.MergeDistance
	for {
		merged := false
		for i := 0; i < len(s.states) && !merged; i++ {
			for j := i + 1; j < len(s.states) && !merged; j++ {
				if sqDist(s.states[i].Centroid, s.states[j].Centroid) > mergeSq {
					continue
				}
				into, from := i, j
				if s.states[from].Weight > s.states[into].Weight {
					into, from = from, into
				}
				events = append(events, s.merge(into, from))
				merged = true
			}
		}
		if !merged {
			return events
		}
	}
}

// merge folds state index from into state index into: the surviving centroid
// is the weight-weighted average and the weights add.
func (s *Set) merge(into, from int) Event {
	a, b := &s.states[into], &s.states[from]
	total := a.Weight + b.Weight
	if total > 0 {
		for d := 0; d < s.dim; d++ {
			a.Centroid[d] = (a.Centroid[d]*a.Weight + b.Centroid[d]*b.Weight) / total
		}
	}
	a.Weight = total
	ev := Event{Kind: EventMerge, Into: a.ID, From: b.ID}
	s.states = append(s.states[:from], s.states[from+1:]...)
	s.merged++
	return ev
}

// SpawnCount returns the total number of states ever spawned (initial seed
// states excluded).
func (s *Set) SpawnCount() int { return s.spawned }

// MergeCount returns the total number of merge events so far.
func (s *Set) MergeCount() int { return s.merged }

// TotalWeight returns the sum of all state weights (total observations
// absorbed so far).
func (s *Set) TotalWeight() float64 {
	var t float64
	for _, st := range s.states {
		t += st.Weight
	}
	return t
}
