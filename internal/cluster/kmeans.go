package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"sensorguard/internal/vecmat"
)

// KMeans runs Lloyd's algorithm with k-means++ seeding over the given
// points and returns k centroids. The paper seeds the on-line clusterer with
// the output of an offline clustering pass over historical data (§4.1); this
// is that pass.
//
// rng drives the (deterministic, seeded) initialisation. maxIter bounds the
// Lloyd iterations; the algorithm also stops early on convergence.
func KMeans(points []vecmat.Vector, k int, rng *rand.Rand, maxIter int) ([]vecmat.Vector, error) {
	switch {
	case k <= 0:
		return nil, errors.New("cluster: k must be positive")
	case len(points) < k:
		return nil, fmt.Errorf("cluster: %d points cannot seed %d clusters", len(points), k)
	case rng == nil:
		return nil, errors.New("cluster: nil rng")
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: ragged point %v: %w", p, vecmat.ErrDimensionMismatch)
		}
	}

	centroids, err := seedPlusPlus(points, k, rng)
	if err != nil {
		return nil, err
	}

	assign := make([]int, len(points))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestDist := 0, math.Inf(1)
			for c, cent := range centroids {
				d, derr := p.Distance(cent)
				if derr != nil {
					return nil, derr
				}
				if d < bestDist {
					best, bestDist = c, d
				}
			}
			if assign[i] != best {
				assign[i], changed = best, true
			}
		}
		if !changed && iter > 0 {
			break
		}
		sums := make([]vecmat.Vector, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = vecmat.NewVector(dim)
		}
		for i, p := range points {
			if err := sums[assign[i]].AddInPlace(p); err != nil {
				return nil, err
			}
			counts[assign[i]]++
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				centroids[c] = points[rng.Intn(len(points))].Clone()
				continue
			}
			centroids[c] = sums[c].Scale(1 / float64(counts[c]))
		}
	}
	return centroids, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ rule: each next
// seed is sampled with probability proportional to its squared distance from
// the nearest existing seed.
func seedPlusPlus(points []vecmat.Vector, k int, rng *rand.Rand) ([]vecmat.Vector, error) {
	centroids := make([]vecmat.Vector, 0, k)
	centroids = append(centroids, points[rng.Intn(len(points))].Clone())
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				d, err := p.Distance(c)
				if err != nil {
					return nil, err
				}
				if dd := d * d; dd < best {
					best = dd
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with existing seeds; duplicate one.
			centroids = append(centroids, points[rng.Intn(len(points))].Clone())
			continue
		}
		target := rng.Float64() * total
		var acc float64
		pick := len(points) - 1
		for i, w := range d2 {
			acc += w
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, points[pick].Clone())
	}
	return centroids, nil
}

// RandomStates returns k random centroids drawn uniformly inside the
// per-dimension [lo, hi] box — the paper's alternative initialisation
// (footnote 5: the methodology "worked equally well" with random states).
func RandomStates(k, dim int, lo, hi float64, rng *rand.Rand) ([]vecmat.Vector, error) {
	if k <= 0 || dim <= 0 {
		return nil, errors.New("cluster: k and dim must be positive")
	}
	if rng == nil {
		return nil, errors.New("cluster: nil rng")
	}
	if hi < lo {
		return nil, fmt.Errorf("cluster: empty range [%v,%v]", lo, hi)
	}
	out := make([]vecmat.Vector, k)
	for i := range out {
		v := vecmat.NewVector(dim)
		for d := range v {
			v[d] = lo + rng.Float64()*(hi-lo)
		}
		out[i] = v
	}
	return out, nil
}
