package cluster

import (
	"fmt"

	"sensorguard/internal/vecmat"
)

// SetState is the serializable form of a Set. Every field the clusterer's
// behaviour depends on is captured — including the internal state order
// (which decides nearest-state ties and merge scan order), the pending-spawn
// buffer, and the Adapt-call ordinal — so a restored Set continues the stream
// exactly as the original would have.
type SetState struct {
	Dim     int            `json:"dim"`
	States  []State        `json:"states"` // internal order, NOT sorted by ID
	NextID  int            `json:"next_id"`
	Adapts  int            `json:"adapts"`
	Pending []PendingState `json:"pending,omitempty"`
	Spawned int            `json:"spawned"`
	Merged  int            `json:"merged"`
}

// PendingState is one unconfirmed far observation awaiting a second sighting.
type PendingState struct {
	Point vecmat.Vector `json:"point"`
	Adapt int           `json:"adapt"`
}

// Export returns the set's serializable state.
func (s *Set) Export() SetState {
	st := SetState{
		Dim:     s.dim,
		States:  make([]State, len(s.states)),
		NextID:  s.nextID,
		Adapts:  s.adapts,
		Spawned: s.spawned,
		Merged:  s.merged,
	}
	for i, stt := range s.states {
		st.States[i] = State{ID: stt.ID, Centroid: stt.Centroid.Clone(), Weight: stt.Weight}
	}
	for _, p := range s.pending {
		st.Pending = append(st.Pending, PendingState{Point: p.point.Clone(), Adapt: p.adapt})
	}
	return st
}

// Restore rebuilds a Set from exported state under the given configuration.
// The state is validated defensively — dimensions, ID uniqueness, and the
// nextID invariant — because checkpoints may arrive from disk after
// corruption the CRC missed or from a hostile file.
func Restore(cfg Config, st SetState) (*Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if st.Dim <= 0 {
		return nil, fmt.Errorf("cluster: restore: dimension %d not positive", st.Dim)
	}
	seen := make(map[int]bool, len(st.States))
	for _, s := range st.States {
		if len(s.Centroid) != st.Dim {
			return nil, fmt.Errorf("cluster: restore: state %d centroid dimension %d, want %d", s.ID, len(s.Centroid), st.Dim)
		}
		if s.ID < 0 || s.ID >= st.NextID {
			return nil, fmt.Errorf("cluster: restore: state ID %d outside [0,%d)", s.ID, st.NextID)
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("cluster: restore: duplicate state ID %d", s.ID)
		}
		seen[s.ID] = true
	}
	out := &Set{
		cfg:     cfg,
		dim:     st.Dim,
		nextID:  st.NextID,
		adapts:  st.Adapts,
		spawned: st.Spawned,
		merged:  st.Merged,
	}
	for _, s := range st.States {
		out.states = append(out.states, State{ID: s.ID, Centroid: s.Centroid.Clone(), Weight: s.Weight})
	}
	for _, p := range st.Pending {
		if len(p.Point) != st.Dim {
			return nil, fmt.Errorf("cluster: restore: pending point dimension %d, want %d", len(p.Point), st.Dim)
		}
		out.pending = append(out.pending, pendingSpawn{point: p.Point.Clone(), adapt: p.Adapt})
	}
	return out, nil
}
