package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sensorguard/internal/vecmat"
)

func testConfig() Config {
	return Config{Alpha: 0.1, MergeDistance: 2, SpawnDistance: 10}
}

func mustNew(t *testing.T, cfg Config, dim int, initial []vecmat.Vector) *Set {
	t.Helper()
	s, err := New(cfg, dim, initial)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"alpha zero", Config{Alpha: 0, MergeDistance: 1, SpawnDistance: 2}},
		{"alpha one", Config{Alpha: 1, MergeDistance: 1, SpawnDistance: 2}},
		{"negative merge", Config{Alpha: 0.1, MergeDistance: -1, SpawnDistance: 2}},
		{"merge above spawn", Config{Alpha: 0.1, MergeDistance: 3, SpawnDistance: 2}},
		{"negative cap", Config{Alpha: 0.1, MergeDistance: 1, SpawnDistance: 2, MaxStates: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if err := testConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	if _, err := New(testConfig(), 0, nil); err == nil {
		t.Error("zero dimension accepted")
	}
	if _, err := New(testConfig(), 2, []vecmat.Vector{{1}}); err == nil {
		t.Error("ragged initial centroid accepted")
	}
}

func TestNearestAndAssign(t *testing.T) {
	s := mustNew(t, testConfig(), 2, []vecmat.Vector{{0, 0}, {100, 100}})
	id, d, err := s.Nearest(vecmat.Vector{1, 1})
	if err != nil {
		t.Fatalf("Nearest: %v", err)
	}
	if id != 0 || math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Errorf("Nearest = (%d, %v), want (0, √2)", id, d)
	}

	ids, err := s.Assign([]vecmat.Vector{{1, 1}, {99, 99}, {60, 60}})
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	want := []int{0, 1, 1}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("Assign[%d] = %d, want %d", i, ids[i], want[i])
		}
	}
}

func TestNearestEmptySetErrors(t *testing.T) {
	s := mustNew(t, testConfig(), 2, nil)
	id, _, err := s.Nearest(vecmat.Vector{0, 0})
	if err == nil {
		t.Error("Nearest on empty set succeeded")
	}
	// Contract: every error path returns id -1, never a plausible state id.
	// Callers that check the id before the error would otherwise read state 0.
	if id != -1 {
		t.Errorf("Nearest on empty set returned id %d, want -1", id)
	}
}

func TestNearestDimensionMismatchErrors(t *testing.T) {
	s := mustNew(t, testConfig(), 2, []vecmat.Vector{{0, 0}})
	id, _, err := s.Nearest(vecmat.Vector{1, 2, 3})
	if err == nil {
		t.Error("Nearest with mismatched dimension succeeded")
	}
	if id != -1 {
		t.Errorf("Nearest with mismatched dimension returned id %d, want -1", id)
	}
}

func TestAdaptMovesCentroidTowardObservations(t *testing.T) {
	s := mustNew(t, testConfig(), 1, []vecmat.Vector{{0}})
	points := []vecmat.Vector{{10}, {10}, {10}}
	events, err := s.Adapt(points, nil)
	if err != nil {
		t.Fatalf("Adapt: %v", err)
	}
	if len(events) != 0 {
		t.Errorf("unexpected events: %v", events)
	}
	st, ok := s.ByID(0)
	if !ok {
		t.Fatal("state 0 vanished")
	}
	// Eq. 6 with α=0.1: 0.9·0 + 0.1·10 = 1.
	if math.Abs(st.Centroid[0]-1) > 1e-12 {
		t.Errorf("centroid = %v, want 1", st.Centroid[0])
	}
	if st.Weight != 3 {
		t.Errorf("weight = %v, want 3", st.Weight)
	}
}

func TestAdaptSpawnsFarStateAfterConfirmation(t *testing.T) {
	s := mustNew(t, testConfig(), 1, []vecmat.Vector{{0}})
	points := []vecmat.Vector{{0}, {50}}
	// First sighting: pending only, no spawn (one-off outliers must not
	// create states).
	events, err := s.Adapt(points, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 || s.Len() != 1 {
		t.Fatalf("one-off outlier spawned: events=%v len=%d", events, s.Len())
	}
	// Second sighting in a later window confirms.
	events, err = s.Adapt(points, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != EventSpawn {
		t.Fatalf("events = %v, want one spawn", events)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	st, ok := s.ByID(events[0].ID)
	if !ok {
		t.Fatal("spawned state not found")
	}
	if math.Abs(st.Centroid[0]-50) > 1e-9 {
		t.Errorf("spawned centroid = %v, want 50", st.Centroid[0])
	}
}

func TestPendingSpawnExpires(t *testing.T) {
	s := mustNew(t, testConfig(), 1, []vecmat.Vector{{0}})
	if _, err := s.Adapt([]vecmat.Vector{{50}}, nil); err != nil {
		t.Fatal(err)
	}
	// Let the pending sighting age out.
	for i := 0; i < pendingTTL; i++ {
		if _, err := s.Adapt([]vecmat.Vector{{0}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// A new far sighting now has no live pending partner: no spawn.
	events, err := s.Adapt([]vecmat.Vector{{50}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("expired pending still confirmed: %v", events)
	}
}

func TestAdaptSpawnsFromMeanPoint(t *testing.T) {
	// No individual observation is far from a state, but the supplied
	// mean point is — the Dynamic-Creation support (DESIGN.md §2).
	s := mustNew(t, testConfig(), 1, []vecmat.Vector{{0}, {60}})
	points := []vecmat.Vector{{0}, {60}}
	if _, err := s.Adapt(points, vecmat.Vector{30}); err != nil {
		t.Fatal(err)
	}
	events, err := s.Adapt(points, vecmat.Vector{30})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != EventSpawn {
		t.Fatalf("events = %v, want one mean spawn", events)
	}
	st, _ := s.ByID(events[0].ID)
	if math.Abs(st.Centroid[0]-30) > 1e-9 {
		t.Errorf("spawned centroid = %v, want 30", st.Centroid[0])
	}
}

func TestAdaptMergesCloseStates(t *testing.T) {
	s := mustNew(t, testConfig(), 1, []vecmat.Vector{{0}, {1}})
	// Give state 1 more weight so it survives the merge.
	points := []vecmat.Vector{{1}, {1}, {1}}
	events, err := s.Adapt(points, nil)
	if err != nil {
		t.Fatal(err)
	}
	var merge *Event
	for i := range events {
		if events[i].Kind == EventMerge {
			merge = &events[i]
		}
	}
	if merge == nil {
		t.Fatalf("no merge event in %v", events)
	}
	if merge.Into != 1 || merge.From != 0 {
		t.Errorf("merge = %+v, want heavier state 1 to survive", merge)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestAdaptRespectsMaxStates(t *testing.T) {
	cfg := testConfig()
	cfg.MaxStates = 1
	s := mustNew(t, cfg, 1, []vecmat.Vector{{0}})
	points := []vecmat.Vector{{500}}
	for i := 0; i < 3; i++ {
		events, err := s.Adapt(points, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(events) != 0 || s.Len() != 1 {
			t.Errorf("cap violated: events=%v len=%d", events, s.Len())
		}
	}
}

func TestStatesReturnsCopies(t *testing.T) {
	s := mustNew(t, testConfig(), 2, []vecmat.Vector{{5, 5}})
	states := s.States()
	states[0].Centroid[0] = 999
	st, _ := s.ByID(0)
	if st.Centroid[0] != 5 {
		t.Error("States leaked internal centroid storage")
	}
}

func TestByIDMissing(t *testing.T) {
	s := mustNew(t, testConfig(), 1, []vecmat.Vector{{0}})
	if _, ok := s.ByID(42); ok {
		t.Error("ByID found a state that does not exist")
	}
}

// Property: state IDs are never reused across spawn/merge churn, and weights
// are conserved through merges.
func TestIDStabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{Alpha: 0.2, MergeDistance: 1.5, SpawnDistance: 8}
		s, err := New(cfg, 1, []vecmat.Vector{{0}})
		if err != nil {
			return false
		}
		seen := map[int]bool{0: true}
		for step := 0; step < 30; step++ {
			n := 1 + rng.Intn(5)
			points := make([]vecmat.Vector, n)
			for i := range points {
				points[i] = vecmat.Vector{rng.Float64() * 40}
			}
			events, err := s.Adapt(points, nil)
			if err != nil {
				return false
			}
			for _, ev := range events {
				if ev.Kind == EventSpawn {
					if seen[ev.ID] {
						return false // reused ID
					}
					seen[ev.ID] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTotalWeightAccumulates(t *testing.T) {
	s := mustNew(t, testConfig(), 1, []vecmat.Vector{{0}})
	points := []vecmat.Vector{{0}, {0.5}}
	if _, err := s.Adapt(points, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalWeight(); got != 2 {
		t.Errorf("TotalWeight = %v, want 2", got)
	}
}

func TestEventString(t *testing.T) {
	if got := (Event{Kind: EventSpawn, ID: 3}).String(); got != "spawn(3)" {
		t.Errorf("spawn string = %q", got)
	}
	if got := (Event{Kind: EventMerge, Into: 1, From: 2}).String(); got != "merge(1<-2)" {
		t.Errorf("merge string = %q", got)
	}
	if got := (Event{}).String(); got != "event(?)" {
		t.Errorf("zero event string = %q", got)
	}
}
