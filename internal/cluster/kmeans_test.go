package cluster

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"sensorguard/internal/vecmat"
)

// blob generates n points around center with the given spread.
func blob(rng *rand.Rand, center vecmat.Vector, spread float64, n int) []vecmat.Vector {
	out := make([]vecmat.Vector, n)
	for i := range out {
		p := vecmat.NewVector(len(center))
		for d := range p {
			p[d] = center[d] + rng.NormFloat64()*spread
		}
		out[i] = p
	}
	return out
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers := []vecmat.Vector{{12, 94}, {17, 84}, {24, 70}, {31, 56}}
	var points []vecmat.Vector
	for _, c := range centers {
		points = append(points, blob(rng, c, 0.5, 100)...)
	}
	got, err := KMeans(points, len(centers), rng, 100)
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	if len(got) != len(centers) {
		t.Fatalf("got %d centroids, want %d", len(got), len(centers))
	}
	// Each true center must have a recovered centroid within 1 unit.
	for _, c := range centers {
		best := math.Inf(1)
		for _, g := range got {
			d, _ := c.Distance(g)
			best = math.Min(best, d)
		}
		if best > 1 {
			t.Errorf("no centroid near %v (closest at distance %v)", c, best)
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := []vecmat.Vector{{1}, {2}}
	if _, err := KMeans(pts, 0, rng, 10); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(pts, 3, rng, 10); err == nil {
		t.Error("k > len(points) accepted")
	}
	if _, err := KMeans(pts, 1, nil, 10); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := KMeans([]vecmat.Vector{{1}, {1, 2}}, 1, rng, 10); err == nil {
		t.Error("ragged points accepted")
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	centers := []vecmat.Vector{{0, 0}, {50, 50}}
	mk := func(seed int64) []vecmat.Vector {
		rng := rand.New(rand.NewSource(seed))
		var points []vecmat.Vector
		for _, c := range centers {
			points = append(points, blob(rng, c, 1, 50)...)
		}
		got, err := KMeans(points, 2, rng, 50)
		if err != nil {
			t.Fatalf("KMeans: %v", err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i][0] < got[j][0] })
		return got
	}
	a, b := mk(7), mk(7)
	for i := range a {
		if !a[i].Equal(b[i], 1e-12) {
			t.Errorf("same seed produced different centroids: %v vs %v", a[i], b[i])
		}
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := []vecmat.Vector{{5, 5}, {5, 5}, {5, 5}}
	got, err := KMeans(pts, 2, rng, 10)
	if err != nil {
		t.Fatalf("KMeans on identical points: %v", err)
	}
	for _, g := range got {
		if !g.Equal(vecmat.Vector{5, 5}, 1e-9) {
			t.Errorf("centroid = %v, want (5,5)", g)
		}
	}
}

func TestRandomStates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	got, err := RandomStates(6, 2, 0, 100, rng)
	if err != nil {
		t.Fatalf("RandomStates: %v", err)
	}
	if len(got) != 6 {
		t.Fatalf("got %d states, want 6", len(got))
	}
	for _, v := range got {
		if len(v) != 2 {
			t.Fatalf("state dim = %d, want 2", len(v))
		}
		for _, x := range v {
			if x < 0 || x > 100 {
				t.Errorf("state component %v outside [0,100]", x)
			}
		}
	}

	if _, err := RandomStates(0, 2, 0, 1, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := RandomStates(1, 2, 5, 1, rng); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := RandomStates(1, 2, 0, 1, nil); err == nil {
		t.Error("nil rng accepted")
	}
}
