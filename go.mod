module sensorguard

go 1.22
