package sensorguard_test

import (
	"bytes"
	"testing"
	"time"

	"sensorguard"
)

// TestPublicAPIEndToEnd exercises the whole public surface the way a
// downstream user would: generate a trace with a fault, seed initial states
// by offline clustering, run the detector, and read the diagnosis.
func TestPublicAPIEndToEnd(t *testing.T) {
	// A two-week GDI-like trace with a stuck sensor.
	drop := mustPlanWithStuckSensor(t)
	cfg := sensorguard.DefaultTraceConfig()
	cfg.Days = 10
	tr, err := sensorguard.GenerateTrace(cfg, sensorguard.WithFaults(drop))
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}

	// Offline k-means over the first (fault-free) day seeds M = 6 states,
	// as in the paper's evaluation.
	var firstDay []sensorguard.Reading
	for _, r := range tr.Readings {
		if r.Time < 24*time.Hour {
			firstDay = append(firstDay, r)
		}
	}
	states, err := sensorguard.InitialStatesFromReadings(firstDay, 6, 1)
	if err != nil {
		t.Fatalf("InitialStatesFromReadings: %v", err)
	}
	if len(states) != 6 {
		t.Fatalf("states = %d, want 6", len(states))
	}

	det, err := sensorguard.NewDetector(sensorguard.DefaultConfig(states))
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	if _, err := det.ProcessTrace(tr.Readings); err != nil {
		t.Fatalf("ProcessTrace: %v", err)
	}
	rep, err := det.Report()
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if !rep.Detected {
		t.Fatal("fault not detected through the public API")
	}
	diag, ok := rep.Sensors[6]
	if !ok {
		t.Fatalf("no diagnosis for sensor 6: %v", rep)
	}
	if diag.Kind != sensorguard.KindStuckAt {
		t.Errorf("sensor 6 kind = %v, want stuck-at", diag.Kind)
	}
	if rep.Network.Kind.IsAttack() {
		t.Errorf("stuck fault reported as attack: %v", rep.Network.Kind)
	}
}

func mustPlanWithStuckSensor(t *testing.T) *sensorguard.FaultPlan {
	t.Helper()
	plan, err := sensorguard.NewFaultPlan(
		sensorguard.FaultSchedule{
			Sensor:   6,
			Injector: sensorguard.StuckAtFault{Value: sensorguard.Vector{15, 1}},
			Start:    36 * time.Hour,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestTraceCSVRoundTripPublic(t *testing.T) {
	cfg := sensorguard.DefaultTraceConfig()
	cfg.Days = 1
	tr, err := sensorguard.GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sensorguard.WriteTraceCSV(&buf, tr); err != nil {
		t.Fatalf("WriteTraceCSV: %v", err)
	}
	got, err := sensorguard.ReadTraceCSV(&buf)
	if err != nil {
		t.Fatalf("ReadTraceCSV: %v", err)
	}
	if len(got.Readings) != len(tr.Readings) {
		t.Errorf("round trip lost readings: %d vs %d", len(got.Readings), len(tr.Readings))
	}
}

func TestRandomInitialStatesPublic(t *testing.T) {
	states, err := sensorguard.RandomInitialStates(6, 2, 0, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 6 || len(states[0]) != 2 {
		t.Errorf("states = %v", states)
	}
}

func TestFaultConstructorsPublic(t *testing.T) {
	if _, err := sensorguard.NewRandomNoiseFault([]float64{5, 10}, 1); err != nil {
		t.Errorf("NewRandomNoiseFault: %v", err)
	}
	if _, err := sensorguard.NewRandomNoiseFault(nil, 1); err == nil {
		t.Error("empty sigma accepted")
	}
	if _, err := sensorguard.NewIntermittentFault(0.5, 1); err != nil {
		t.Errorf("NewIntermittentFault: %v", err)
	}
	if _, err := sensorguard.NewIntermittentFault(1.5, 1); err == nil {
		t.Error("bad drop rate accepted")
	}
}

func TestDetectorDeterminismPublic(t *testing.T) {
	// Identical configuration + identical input ⇒ identical report JSON.
	// This is the invariant the event-replay persistence strategy
	// (docs/TUNING.md §6) rests on.
	runOnce := func() []byte {
		plan, err := sensorguard.NewFaultPlan(sensorguard.FaultSchedule{
			Sensor:   6,
			Injector: sensorguard.StuckAtFault{Value: sensorguard.Vector{15, 1}},
			Start:    36 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := sensorguard.DefaultTraceConfig()
		cfg.Days = 6
		tr, err := sensorguard.GenerateTrace(cfg, sensorguard.WithFaults(plan))
		if err != nil {
			t.Fatal(err)
		}
		states := []sensorguard.Vector{{12, 94}, {17, 84}, {24, 70}, {31, 56}}
		det, err := sensorguard.NewDetector(sensorguard.DefaultConfig(states))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := det.ProcessTrace(tr.Readings); err != nil {
			t.Fatal(err)
		}
		rep, err := det.Report()
		if err != nil {
			t.Fatal(err)
		}
		data, err := rep.MarshalIndentJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := runOnce(), runOnce()
	if !bytes.Equal(a, b) {
		t.Error("two identical runs produced different reports")
	}
}

func TestPeriodicAttackWindowPublic(t *testing.T) {
	adv, err := sensorguard.NewAdversary([]int{0}, sensorguard.GDIRanges())
	if err != nil {
		t.Fatal(err)
	}
	inner := &sensorguard.DynamicCreationAttack{Adversary: adv, Target: sensorguard.Vector{20, 50}}
	if _, err := sensorguard.PeriodicAttackWindow(inner, 24*time.Hour, 0, 3*time.Hour); err != nil {
		t.Fatalf("PeriodicAttackWindow: %v", err)
	}
	if _, err := sensorguard.PeriodicAttackWindow(inner, 0, 0, time.Hour); err == nil {
		t.Error("invalid gate accepted")
	}
}
