package sensorguard_test

import (
	"fmt"
	"time"

	"sensorguard"
)

// ExampleNewDetector shows the minimal detection loop: generate a trace with
// a stuck sensor, run the detector, and print the diagnosis.
func ExampleNewDetector() {
	plan, err := sensorguard.NewFaultPlan(sensorguard.FaultSchedule{
		Sensor:   6,
		Injector: sensorguard.StuckAtFault{Value: sensorguard.Vector{15, 1}},
		Start:    48 * time.Hour,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	cfg := sensorguard.DefaultTraceConfig()
	cfg.Days = 7
	trace, err := sensorguard.GenerateTrace(cfg, sensorguard.WithFaults(plan))
	if err != nil {
		fmt.Println(err)
		return
	}

	states := []sensorguard.Vector{{12, 94}, {17, 84}, {24, 70}, {31, 56}}
	det, err := sensorguard.NewDetector(sensorguard.DefaultConfig(states))
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := det.ProcessTrace(trace.Readings); err != nil {
		fmt.Println(err)
		return
	}
	report, err := det.Report()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("detected:", report.Detected)
	fmt.Println("network:", report.Network.Kind)
	fmt.Println("sensor 6:", report.Sensors[6].Kind)
	// Output:
	// detected: true
	// network: none
	// sensor 6: stuck-at
}

// ExampleGenerateTrace shows trace generation and the CSV schema.
func ExampleGenerateTrace() {
	cfg := sensorguard.DefaultTraceConfig()
	cfg.Days = 1
	cfg.Sensors = 3
	cfg.LossProb = 0
	trace, err := sensorguard.GenerateTrace(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("attributes:", trace.Attributes)
	fmt.Println("sensors:", len(trace.Sensors()))
	fmt.Println("readings:", len(trace.Readings))
	// Output:
	// attributes: [temperature humidity]
	// sensors: 3
	// readings: 864
}
