package sensorguard_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§4), plus the ablation studies DESIGN.md calls out. Each
// benchmark regenerates its experiment end to end — synthetic GDI trace,
// detector run, structural classification — and reports the experiment's
// headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction run. Benchmarks use a 10-day trace (the
// paper's full month is exercised by cmd/experiments and the test suite);
// classification outcomes are still asserted, so a benchmark fails loudly if
// the reproduction regresses.
import (
	"testing"

	"sensorguard/internal/classify"
	"sensorguard/internal/exp"
)

// benchConfig is the benchmark-scale experiment configuration.
func benchConfig() exp.Config {
	return exp.Config{Days: 10, Seed: 2006, KMeansInit: true}
}

// attackConfig gives the slower-washing attack signatures more runway.
func attackConfig() exp.Config {
	cfg := benchConfig()
	cfg.Days = 14
	return cfg
}

func BenchmarkTable1Setup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Table1()
		if len(rows) != 6 {
			b.Fatalf("table 1 rows = %d", len(rows))
		}
	}
}

func BenchmarkFigure6DailyVariation(b *testing.B) {
	var swing float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure6(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		swing = res.TempMax - res.TempMin
	}
	b.ReportMetric(swing, "tempswing_C")
}

func BenchmarkFigure7CorrectModel(b *testing.B) {
	var recovered float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure7(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if res.KeyRecovered < 4 {
			b.Fatalf("key states recovered = %d/4", res.KeyRecovered)
		}
		recovered = float64(res.KeyRecovered)
	}
	b.ReportMetric(recovered, "keystates")
}

func BenchmarkFigure8FaultySensors(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Ratio7
	}
	b.ReportMetric(ratio, "sensor7_hum_ratio")
}

func BenchmarkStuckAtClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Tables2And3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if res.Diagnosis.Kind != classify.KindStuckAt {
			b.Fatalf("diagnosis = %v, want stuck-at", res.Diagnosis.Kind)
		}
	}
}

func BenchmarkCalibrationClassification(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Tables4And5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if res.Diagnosis.Kind != classify.KindCalibration {
			b.Fatalf("diagnosis = %v, want calibration", res.Diagnosis.Kind)
		}
		ratio = res.Diagnosis.Ratio.Mean[0]
	}
	b.ReportMetric(ratio, "temp_ratio")
}

func BenchmarkDeletionAttack(b *testing.B) {
	cfg := attackConfig()
	cfg.Days = 21
	for i := 0; i < b.N; i++ {
		res, err := exp.Table6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Network.Kind != classify.KindDynamicDeletion {
			b.Fatalf("diagnosis = %v, want dynamic-deletion", res.Network.Kind)
		}
	}
}

func BenchmarkCreationAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Table7(attackConfig())
		if err != nil {
			b.Fatal(err)
		}
		if res.Network.Kind != classify.KindDynamicCreation {
			b.Fatalf("diagnosis = %v, want dynamic-creation", res.Network.Kind)
		}
	}
}

func BenchmarkChangeAttack(b *testing.B) {
	cfg := attackConfig()
	cfg.Days = 21
	for i := 0; i < b.N; i++ {
		res, err := exp.ChangeAttack(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Network.Kind != classify.KindDynamicChange {
			b.Fatalf("diagnosis = %v, want dynamic-change", res.Network.Kind)
		}
	}
}

func BenchmarkMixedAttack(b *testing.B) {
	cfg := attackConfig()
	cfg.Days = 21
	for i := 0; i < b.N; i++ {
		res, err := exp.MixedAttack(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Network.Kind != classify.KindMixed {
			b.Fatalf("diagnosis = %v, want mixed", res.Network.Kind)
		}
	}
}

func BenchmarkFigure12Alarms(b *testing.B) {
	var healthy float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure12(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		healthy = 100 * res.HealthyRate
	}
	b.ReportMetric(healthy, "healthy_raw_alarm_%")
}

func BenchmarkAblationOnlineVsBaumWelch(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := exp.AblationOnlineVsBaumWelch(3000, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.Speedup
	}
	b.ReportMetric(speedup, "speedup_x")
}

func BenchmarkAblationAlarmFilters(b *testing.B) {
	cfg := benchConfig()
	cfg.Days = 7
	for i := 0; i < b.N; i++ {
		res, err := exp.AblationAlarmFilters(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range res.Outcomes {
			if o.DetectionWindow < 0 {
				b.Fatalf("%s never detected", o.Name)
			}
		}
	}
}

func BenchmarkAblationInitialStates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Random initial states need a few extra days to converge onto
		// the dwell structure (they start anywhere in the attribute
		// box), hence the attack-scale trace.
		res, err := exp.AblationInitialStates(attackConfig())
		if err != nil {
			b.Fatal(err)
		}
		if res.KMeansKeyStates < 4 || res.RandomKeyStates < 4 {
			b.Fatalf("key states: kmeans %d, random %d", res.KMeansKeyStates, res.RandomKeyStates)
		}
	}
}

func BenchmarkAblationMajoritySweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationMajoritySweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBaseline(b *testing.B) {
	var trainMs float64
	for i := 0; i < b.N; i++ {
		res, err := exp.AblationBaseline(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if !res.OursDetected || res.OursCulprit != 6 {
			b.Fatalf("our detector failed: %+v", res)
		}
		trainMs = float64(res.BaselineTrainTime.Milliseconds())
	}
	b.ReportMetric(trainMs, "baseline_train_ms")
}

func BenchmarkAblationNoiseSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.AblationNoiseSweep(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if res.Points[0].Kind != classify.KindCalibration {
			b.Fatalf("nominal-noise diagnosis = %v", res.Points[0].Kind)
		}
	}
}
